"""Binlog: the compact binary on-disk customer-sequence format.

The paper's scale-up experiments (Section 4, Fig. 8) mine databases of
millions of customers — far beyond anything that should be parsed from
text per pass. Binlog is the disk substrate of the out-of-core path
(:mod:`repro.db.partitioned`): one file holds one *partition* of the
customer database, varint-encoded so a record costs roughly one byte per
item, streamable front to back so a counting pass never needs the whole
partition in memory, and self-describing enough that corruption is
detected and reported with the file name and byte offset.

Layout::

    +--------------------+  offset 0
    | magic  b"SQBL"     |  4 bytes
    | version 0x01       |  1 byte
    +--------------------+  offset 5 = first record
    | record*            |  uvarint customer_id
    |                    |  uvarint num_events
    |                    |    per event: uvarint num_items,
    |                    |               num_items × uvarint item
    +--------------------+  index_offset
    | uvarint num_records|  the partition index: every record's byte
    | uvarint gap*       |  offset, delta-encoded (first gap is from
    +--------------------+  offset 5)
    | crc32         4 LE |  fixed 20-byte footer (version 2): CRC-32 of
    | index_offset  8 LE |  the record region [5, index_offset), then
    | magic b"SQBLend\n" |  the index offset, then the magic tail
    +--------------------+

All integers (ids, items, counts) must be non-negative; items within an
event are written in ascending order and validated on read, so a binlog
record round-trips the canonical itemset form exactly. The footer makes
``len()`` and truncation detection O(1): a file whose tail is missing or
whose index disagrees with the records raises :class:`BinlogFormatError`
naming the file and the offending offset.

Version 2 (this release) adds the record-region CRC-32 to the footer so
bit rot *inside* records — which can decode into plausible-but-wrong
data the structural checks cannot catch — is detectable. Opening stays
O(1): the CRC is checked only by :meth:`BinlogReader.verify`, which
``seqmine fsck`` runs over every file. Version-1 files (no CRC, 16-byte
footer) still read fine; :attr:`BinlogReader.crc32` is ``None`` for
them and ``verify`` falls back to a full structural decode.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from types import TracebackType
from typing import Iterable, Iterator, Sequence as PySequence

from repro.io.fsops import fs_fsync, fs_open

MAGIC = b"SQBL"
VERSION = 2
SUPPORTED_VERSIONS = (1, 2)
HEADER = MAGIC + bytes([VERSION])
FOOTER_MAGIC = b"SQBLend\n"
#: Version-2 footer: crc32 (4 LE) + index_offset (8 LE) + magic.
FOOTER_SIZE = 4 + 8 + len(FOOTER_MAGIC)
#: Version-1 footer: index_offset (8 LE) + magic.
FOOTER_SIZE_V1 = 8 + len(FOOTER_MAGIC)

#: One decoded record: (customer_id, events), events canonical
#: (ascending items, tuple-of-tuples).
BinlogRecord = tuple[int, tuple[tuple[int, ...], ...]]


class BinlogFormatError(ValueError):
    """Raised for malformed binlog input; names the file and byte offset."""


def encode_uvarint(value: int) -> bytes:
    """LEB128 unsigned varint encoding of a non-negative integer."""
    if value < 0:
        raise ValueError(f"cannot varint-encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(buffer: bytes, offset: int) -> tuple[int, int]:
    """Decode one uvarint from ``buffer`` at ``offset``.

    Returns ``(value, next_offset)``; raises ``IndexError`` on truncation
    (callers translate into :class:`BinlogFormatError` with file context).
    """
    result = 0
    shift = 0
    while True:
        byte = buffer[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def encode_record(customer_id: int, events: PySequence[PySequence[int]]) -> bytes:
    """Encode one customer record (canonical ascending items per event)."""
    out = bytearray(encode_uvarint(customer_id))
    out += encode_uvarint(len(events))
    for event in events:
        out += encode_uvarint(len(event))
        for item in event:
            out += encode_uvarint(item)
    return bytes(out)


#: Bytes a writer buffers before appending to its file. Writers hold
#: **no file descriptor between flushes**, which is what lets the
#: partitioned layer round-robin customers across hundreds of partitions
#: (e.g. a --max-memory-mb conversion of a multi-GB input) without
#: tripping the process fd limit.
WRITER_FLUSH_BYTES = 64 * 1024


class BinlogWriter:
    """Stream customer records into one binlog partition file.

    Appends are buffered and flushed to the file in ``WRITER_FLUSH_BYTES``
    batches through a transient append-mode handle — a writer owns no
    open file descriptor between flushes, so any number of writers can
    be live at once. Use as a context manager; the footer (index + fixed
    tail) is written on :meth:`close`, so a crash mid-write leaves a
    file the reader rejects as truncated rather than silently short.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        with fs_open(self.path, "wb") as handle:
            handle.write(HEADER)
        self._buffer = bytearray()
        # The record index, delta-encoded incrementally as records are
        # appended (~1-2 bytes per record) — never a list of offsets, so
        # writer memory stays O(flush buffer + index bytes), not
        # O(records * sizeof(int)).
        self._index = bytearray()
        # Record-region CRC-32, folded in per appended payload so the
        # footer checksum costs no extra pass over the data.
        self._crc = 0
        self._num_records = 0
        self._previous_offset = len(HEADER)
        self._position = len(HEADER)
        self._closed = False

    def append(
        self, customer_id: int, events: PySequence[PySequence[int]]
    ) -> None:
        if self._closed:
            raise ValueError(f"{self.path}: writer already closed")
        payload = encode_record(customer_id, events)
        self._index += encode_uvarint(self._position - self._previous_offset)
        self._previous_offset = self._position
        self._num_records += 1
        self._buffer += payload
        self._crc = zlib.crc32(payload, self._crc)
        self._position += len(payload)
        if len(self._buffer) >= WRITER_FLUSH_BYTES:
            self._flush()

    def _flush(self, *, sync: bool = False) -> None:
        if self._buffer or sync:
            with fs_open(self.path, "ab") as handle:
                handle.write(self._buffer)
                if sync:
                    fs_fsync(handle)
            self._buffer.clear()

    @property
    def num_records(self) -> int:
        return self._num_records

    def close(self) -> None:
        if self._closed:
            return
        index_offset = self._position
        self._buffer += encode_uvarint(self._num_records)
        self._buffer += self._index
        self._buffer += self._crc.to_bytes(4, "little")
        self._buffer += index_offset.to_bytes(8, "little")
        self._buffer += FOOTER_MAGIC
        self._flush(sync=True)
        self._closed = True

    def abort(self) -> None:
        """Stop writing **without** finalizing: no index, no footer.

        The file is left in the state a crash would leave it — missing
        its footer — which every reader rejects as truncated. This is
        the correct exit when the record *source* failed mid-stream: the
        alternative (a valid footer over a prefix of the records) would
        read back as a smaller-but-valid partition, silently.
        """
        self._flush()
        self._closed = True

    def __enter__(self) -> "BinlogWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        _exc: BaseException | None,
        _tb: TracebackType | None,
    ) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def write_binlog(
    path: str | Path, records: Iterable[BinlogRecord]
) -> int:
    """Write all ``records`` to ``path``; returns the record count."""
    with BinlogWriter(path) as writer:
        for customer_id, events in records:
            writer.append(customer_id, events)
        return writer.num_records


#: Records per transient read in :meth:`BinlogReader.records` — spans
#: are contiguous, so one batch is one ``seek``+``read``.
READER_BATCH_RECORDS = 256


class BinlogReader:
    """One binlog partition, validated on open, streamed on iteration.

    Opening reads and checks the header, footer and the (compact,
    delta-encoded) record index — so ``len()`` is O(1) and truncated
    files fail fast — but **not** the record region: iteration reads the
    file in contiguous batches of ``READER_BATCH_RECORDS`` record spans,
    opening the file only for the duration of each batch read. A reader
    therefore holds **no file descriptor between batches** and its
    resident cost is the index (a byte or two per record) plus one
    batch — which is what lets the out-of-core layer keep a reader per
    partition live at once (the ordered K-way merge, the round-robin
    writers' mirror image) at any K, without fd-limit or memory concerns.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            size = os.path.getsize(self.path)
        except OSError as exc:
            raise BinlogFormatError(f"{self.path}: cannot open: {exc}") from exc
        if size < len(HEADER) + FOOTER_SIZE_V1:
            raise BinlogFormatError(
                f"{self.path}: truncated at offset {size}: file shorter "
                f"than header plus footer"
            )
        with open(self.path, "rb") as handle:
            header = handle.read(len(HEADER))
            if header[: len(MAGIC)] != MAGIC:
                raise BinlogFormatError(
                    f"{self.path}: bad magic at offset 0: not a binlog file"
                )
            self.version = header[len(MAGIC)]
            if self.version not in SUPPORTED_VERSIONS:
                raise BinlogFormatError(
                    f"{self.path}: unsupported version {self.version} "
                    f"at offset {len(MAGIC)}"
                )
            footer_size = FOOTER_SIZE if self.version >= 2 else FOOTER_SIZE_V1
            if size < len(HEADER) + footer_size:
                raise BinlogFormatError(
                    f"{self.path}: truncated at offset {size}: file shorter "
                    f"than header plus footer"
                )
            handle.seek(size - footer_size)
            footer = handle.read(footer_size)
            if footer[-len(FOOTER_MAGIC):] != FOOTER_MAGIC:
                raise BinlogFormatError(
                    f"{self.path}: truncated at offset "
                    f"{size - len(FOOTER_MAGIC)}: footer magic missing"
                )
            #: Footer CRC-32 of the record region; ``None`` for
            #: version-1 files, which carry no checksum.
            self.crc32: int | None = None
            if self.version >= 2:
                self.crc32 = int.from_bytes(footer[:4], "little")
                footer = footer[4:]
            self._index_offset = int.from_bytes(footer[:8], "little")
            if not len(HEADER) <= self._index_offset <= size - footer_size:
                raise BinlogFormatError(
                    f"{self.path}: corrupt footer at offset "
                    f"{size - footer_size}: index offset "
                    f"{self._index_offset} out of range"
                )
            handle.seek(self._index_offset)
            index = handle.read(size - footer_size - self._index_offset)
        try:
            self._num_records, consumed = decode_uvarint(index, 0)
        except IndexError:
            raise BinlogFormatError(
                f"{self.path}: truncated index at offset {self._index_offset}"
            ) from None
        self._index = index[consumed:]
        if self._num_records == 0 and self._index_offset != len(HEADER):
            # Record bytes exist that the index does not account for — a
            # zeroed count must not read back as a valid empty partition.
            raise BinlogFormatError(
                f"{self.path}: corrupt index at offset {self._index_offset}: "
                f"zero records but record region ends at {self._index_offset}"
            )

    def __len__(self) -> int:
        return self._num_records

    def __iter__(self) -> Iterator[BinlogRecord]:
        return self.records()

    def verify(self) -> int:
        """Fully validate the file; returns the record count.

        For version-2 files the record region is re-hashed and compared
        against the footer CRC-32 — this is the check that catches bit
        rot *inside* records, which structural decoding can miss. Every
        record is then structurally decoded (all versions). O(file
        size); ``seqmine fsck`` runs this, plain opens do not.
        """
        if self.crc32 is not None:
            crc = 0
            position = len(HEADER)
            with open(self.path, "rb") as handle:
                handle.seek(position)
                remaining = self._index_offset - position
                while remaining:
                    chunk = handle.read(min(remaining, 1 << 20))
                    if not chunk:
                        raise BinlogFormatError(
                            f"{self.path}: truncated record region at "
                            f"offset {self._index_offset - remaining}"
                        )
                    crc = zlib.crc32(chunk, crc)
                    remaining -= len(chunk)
            if crc != self.crc32:
                raise BinlogFormatError(
                    f"{self.path}: checksum mismatch over records "
                    f"5..{self._index_offset}: footer says "
                    f"{self.crc32:#010x}, records hash to {crc:#010x}"
                )
        count = 0
        for _ in self.records():
            count += 1
        return count

    def _record_spans(self) -> Iterator[tuple[int, int]]:
        """Each record's ``(start, end)`` byte span, decoded lazily from
        the delta index; the last record ends where the index begins."""
        position = 0
        previous = len(HEADER)
        start: int | None = None
        for _ in range(self._num_records):
            try:
                gap, position = decode_uvarint(self._index, position)
            except IndexError:
                raise BinlogFormatError(
                    f"{self.path}: truncated index at offset "
                    f"{self._index_offset}"
                ) from None
            offset = previous + gap
            previous = offset
            if start is not None:
                yield (start, offset)
            start = offset
        if start is not None:
            if start >= self._index_offset:
                raise BinlogFormatError(
                    f"{self.path}: corrupt index at offset "
                    f"{self._index_offset}: record offset {start} overruns "
                    f"the index"
                )
            yield (start, self._index_offset)

    def records(self) -> Iterator[BinlogRecord]:
        """Stream records front to back, one transient read per batch."""
        position = len(HEADER)
        batch: list[tuple[int, int, int]] = []  # (number, start, end)
        for number, (start, end) in enumerate(self._record_spans(), 1):
            if start != position or end <= start:
                raise BinlogFormatError(
                    f"{self.path}: corrupt index at offset "
                    f"{self._index_offset}: record {number} span "
                    f"{start}..{end} does not follow offset {position}"
                )
            batch.append((number, start, end))
            position = end
            if len(batch) >= READER_BATCH_RECORDS:
                yield from self._read_batch(batch)
                batch = []
        if batch:
            yield from self._read_batch(batch)

    def _read_batch(
        self, batch: list[tuple[int, int, int]]
    ) -> Iterator[BinlogRecord]:
        base = batch[0][1]
        length = batch[-1][2] - base
        with open(self.path, "rb") as handle:
            handle.seek(base)
            blob = handle.read(length)
        if len(blob) < length:
            raise BinlogFormatError(
                f"{self.path}: truncated record {batch[0][0]} at offset "
                f"{base + len(blob)}"
            )
        for number, start, end in batch:
            yield self._decode_record(blob[start - base : end - base],
                                      start, number)

    def _decode_record(
        self, payload: bytes, start: int, number: int
    ) -> BinlogRecord:
        offset = 0
        try:
            customer_id, offset = decode_uvarint(payload, offset)
            num_events, offset = decode_uvarint(payload, offset)
            events: list[tuple[int, ...]] = []
            for _ in range(num_events):
                num_items, offset = decode_uvarint(payload, offset)
                items: list[int] = []
                for _ in range(num_items):
                    item, offset = decode_uvarint(payload, offset)
                    items.append(item)
                events.append(tuple(items))
        except IndexError:
            raise BinlogFormatError(
                f"{self.path}: truncated record {number} at offset {start}"
            ) from None
        if offset != len(payload):
            raise BinlogFormatError(
                f"{self.path}: corrupt record {number} at offset {start}: "
                f"decoded {offset} of {len(payload)} bytes"
            )
        for event in events:
            if any(event[i] >= event[i + 1] for i in range(len(event) - 1)):
                raise BinlogFormatError(
                    f"{self.path}: corrupt record {number} at offset {start}: "
                    f"items not strictly ascending"
                )
        return customer_id, tuple(events)


def read_binlog(path: str | Path) -> list[BinlogRecord]:
    """Read and validate a whole partition file. Convenience for tests
    and tools; the out-of-core layer streams via :class:`BinlogReader`."""
    return list(BinlogReader(path))
