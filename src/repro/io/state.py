"""(De)serialization of :class:`~repro.incremental.state.MiningState`.

The snapshot lives in one JSON file, by convention
``mining_state.json`` next to the partition manifest
(:data:`repro.db.partitioned.MINING_STATE_NAME`). Keys must be strings
in JSON, so itemsets and sequences use a compact text encoding:

* an itemset is its items, ascending, space-separated — ``"3 7"``;
* a sequence is its itemsets joined by ``/`` — ``"3/7 9"`` is
  ``<(3)(7 9)>``.

Malformed input — missing file, invalid JSON, wrong format marker,
wrong types — raises :class:`MiningStateError` naming the file, which
the CLI surfaces as a one-line error (exit 1), never a traceback.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.sequence import Itemset
from repro.io.atomic import atomic_writer
from repro.incremental.state import (
    STATE_FORMAT,
    STATE_VERSION,
    ExpandedSequence,
    MiningState,
)


class MiningStateError(ValueError):
    """Raised for missing or malformed mining-state files."""


def encode_itemset(itemset: Itemset) -> str:
    return " ".join(str(item) for item in itemset)


def decode_itemset(text: str) -> Itemset:
    try:
        items = tuple(int(part) for part in text.split())
    except ValueError:
        raise ValueError(f"bad itemset key {text!r}") from None
    if not items or any(
        items[i] >= items[i + 1] for i in range(len(items) - 1)
    ):
        raise ValueError(f"bad itemset key {text!r}: not strictly ascending")
    return items


def encode_sequence(sequence: ExpandedSequence) -> str:
    return "/".join(encode_itemset(event) for event in sequence)


def decode_sequence(text: str) -> ExpandedSequence:
    return tuple(decode_itemset(part) for part in text.split("/"))


def write_mining_state(state: MiningState, path: str | Path) -> None:
    """Serialize ``state`` to ``path`` (pretty-printed JSON)."""
    payload = {
        "format": STATE_FORMAT,
        "version": STATE_VERSION,
        "minsup": state.minsup,
        "algorithm": state.algorithm,
        "strategy": state.strategy,
        "num_customers": state.num_customers,
        "generation": state.generation,
        "length2_complete": state.length2_complete,
        "max_pattern_length": state.max_pattern_length,
        "max_litemset_size": state.max_litemset_size,
        "item_counts": {
            str(item): count for item, count in sorted(state.item_counts.items())
        },
        "itemset_counts": {
            encode_itemset(itemset): count
            for itemset, count in sorted(state.itemset_counts.items())
        },
        "sequence_counts": {
            encode_sequence(sequence): count
            for sequence, count in sorted(state.sequence_counts.items())
        },
    }
    # Atomic replacement: a crash mid-serialization must never leave a
    # torn snapshot that poisons every later `update` (see repro.io.atomic).
    with atomic_writer(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def read_mining_state(path: str | Path) -> MiningState:
    """Load and validate a mining-state snapshot.

    Raises :class:`MiningStateError` (a ``ValueError``) naming ``path``
    for every way the file can be wrong.
    """
    path = Path(path)
    if not path.exists():
        raise MiningStateError(
            f"{path}: no mining-state snapshot found (mine with "
            f"--save-state first)"
        )
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as exc:
        raise MiningStateError(f"{path}: not valid JSON: {exc}") from exc
    except OSError as exc:
        raise MiningStateError(f"{path}: cannot read: {exc}") from exc
    if not isinstance(payload, dict):
        raise MiningStateError(f"{path}: expected a JSON object")
    if payload.get("format") != STATE_FORMAT:
        raise MiningStateError(
            f"{path}: unexpected format {payload.get('format')!r} "
            f"(not a mining-state snapshot)"
        )
    if payload.get("version") != STATE_VERSION:
        raise MiningStateError(
            f"{path}: unsupported state version {payload.get('version')!r}"
        )
    try:
        state = MiningState(
            minsup=float(payload["minsup"]),
            algorithm=str(payload["algorithm"]),
            strategy=str(payload["strategy"]),
            num_customers=int(payload["num_customers"]),
            generation=int(payload["generation"]),
            length2_complete=bool(payload["length2_complete"]),
            item_counts={
                int(key): int(count)
                for key, count in payload["item_counts"].items()
            },
            itemset_counts={
                decode_itemset(key): int(count)
                for key, count in payload["itemset_counts"].items()
            },
            sequence_counts={
                decode_sequence(key): int(count)
                for key, count in payload["sequence_counts"].items()
            },
            max_pattern_length=(
                None
                if payload.get("max_pattern_length") is None
                else int(payload["max_pattern_length"])
            ),
            max_litemset_size=(
                None
                if payload.get("max_litemset_size") is None
                else int(payload["max_litemset_size"])
            ),
        )
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise MiningStateError(f"{path}: corrupt mining state: {exc}") from exc
    if not 0.0 < state.minsup <= 1.0:
        raise MiningStateError(
            f"{path}: corrupt mining state: minsup {state.minsup} "
            f"out of range"
        )
    if state.num_customers < 0 or state.generation < 0:
        raise MiningStateError(
            f"{path}: corrupt mining state: negative customer count "
            f"or generation"
        )
    return state
