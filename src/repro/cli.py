"""Command-line interface: ``seqmine`` (or ``python -m repro``).

Subcommands:

* ``seqmine generate`` — write a synthetic dataset (SPMF or CSV).
* ``seqmine mine`` — run the five-phase miner over a dataset file.
* ``seqmine info`` — dataset statistics (paper Table 2 columns).
* ``seqmine experiment`` — regenerate a paper table/figure by id.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence as PySequence

from repro.analysis.compare import pattern_length_histogram
from repro.core.miner import ALGORITHM_NAMES, MiningParams, mine
from repro.core.phase import CountingOptions
from repro.datagen.generator import generate_database
from repro.datagen.params import SyntheticParams
from repro.db.database import SequenceDatabase
from repro.io.csvio import (
    database_to_transactions,
    read_database_csv,
    write_transactions_csv,
)
from repro.io.patterns import patterns_to_json, write_patterns
from repro.io.spmf import read_spmf, write_spmf


def _load_database(path: str, fmt: str) -> SequenceDatabase:
    if fmt == "spmf":
        return read_spmf(path)
    if fmt == "csv":
        return read_database_csv(path)
    raise ValueError(f"unknown format {fmt!r}")


def _cmd_generate(args: argparse.Namespace) -> int:
    params = SyntheticParams.from_name(
        args.dataset, num_customers=args.customers
    )
    db = generate_database(params, seed=args.seed)
    if args.format == "spmf":
        write_spmf(db, args.output)
    else:
        write_transactions_csv(database_to_transactions(db), args.output)
    stats = db.stats()
    print(
        f"wrote {args.output}: {stats.num_customers} customers, "
        f"{stats.num_transactions} transactions "
        f"({stats.approx_size_mb:.2f} MB est.)"
    )
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    db = _load_database(args.input, args.format)
    params = MiningParams(
        minsup=args.minsup,
        algorithm=args.algorithm,
        dynamic_step=args.dynamic_step,
        max_pattern_length=args.max_length,
        counting=CountingOptions(
            strategy=args.strategy,
            workers=args.workers,
            chunk_size=args.chunk_size,
        ),
    )
    result = mine(db, params)
    print(result.summary(), file=sys.stderr)
    if args.output:
        write_patterns(result.patterns, args.output)
        print(f"wrote {result.num_patterns} patterns to {args.output}",
              file=sys.stderr)
    elif args.json:
        print(patterns_to_json(result.patterns))
    else:
        for pattern in result.patterns:
            print(pattern)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    db = _load_database(args.input, args.format)
    for key, value in db.stats().as_row().items():
        print(f"{key}: {value}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.figures import EXPERIMENTS

    if args.list or not args.experiment_id:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    builder = EXPERIMENTS.get(args.experiment_id)
    if builder is None:
        print(f"unknown experiment {args.experiment_id!r}; use --list",
              file=sys.stderr)
        return 2
    result = builder()
    print(result.render(chart=not args.no_chart))
    return 0


def _cmd_histogram(args: argparse.Namespace) -> int:
    db = _load_database(args.input, args.format)
    result = mine(db, MiningParams(minsup=args.minsup))
    for length, count in pattern_length_histogram(result).items():
        print(f"length {length}: {count} maximal patterns")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="seqmine",
        description="Mining Sequential Patterns (Agrawal & Srikant, ICDE 1995) "
        "— AprioriAll / AprioriSome / DynamicSome",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("--dataset", default="C10-T2.5-S4-I1.25",
                     help="paper-style name, e.g. C10-T2.5-S4-I1.25")
    gen.add_argument("--customers", type=int, default=SyntheticParams().num_customers)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--format", choices=("spmf", "csv"), default="spmf")
    gen.add_argument("--output", required=True)
    gen.set_defaults(func=_cmd_generate)

    mine_cmd = sub.add_parser("mine", help="mine sequential patterns from a file")
    mine_cmd.add_argument("--input", required=True)
    mine_cmd.add_argument("--format", choices=("spmf", "csv"), default="spmf")
    mine_cmd.add_argument("--minsup", type=float, required=True,
                          help="minimum support as a fraction, e.g. 0.01")
    mine_cmd.add_argument("--algorithm", choices=ALGORITHM_NAMES,
                          default="aprioriall")
    mine_cmd.add_argument("--dynamic-step", type=int, default=2)
    mine_cmd.add_argument("--max-length", type=int, default=None)
    mine_cmd.add_argument("--strategy",
                          choices=("hashtree", "naive", "bitset", "vertical"),
                          default="hashtree",
                          help="support-counting backend: the paper's "
                          "candidate hash tree, the quadratic reference, "
                          "the bitset-compiled database (compile "
                          "customers once, count with integer bit-ops), "
                          "or the vertical id-list format (invert once, "
                          "count each candidate by joining its parents' "
                          "memoized support lists — no database scan)")
    mine_cmd.add_argument("--workers", type=int, default=1,
                          help="worker processes for support counting "
                          "(1 = serial, 0 = all CPUs)")
    mine_cmd.add_argument("--chunk-size", type=int, default=None,
                          help="customers per counting shard "
                          "(default: one shard per worker)")
    mine_cmd.add_argument("--output", default=None,
                          help="write patterns to this file instead of stdout")
    mine_cmd.add_argument("--json", action="store_true",
                          help="print patterns as JSON")
    mine_cmd.set_defaults(func=_cmd_mine)

    info = sub.add_parser("info", help="print dataset statistics")
    info.add_argument("--input", required=True)
    info.add_argument("--format", choices=("spmf", "csv"), default="spmf")
    info.set_defaults(func=_cmd_info)

    hist = sub.add_parser("histogram", help="pattern-length histogram")
    hist.add_argument("--input", required=True)
    hist.add_argument("--format", choices=("spmf", "csv"), default="spmf")
    hist.add_argument("--minsup", type=float, required=True)
    hist.set_defaults(func=_cmd_histogram)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("experiment_id", nargs="?", default=None)
    exp.add_argument("--list", action="store_true", help="list experiment ids")
    exp.add_argument("--no-chart", action="store_true")
    exp.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: PySequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
