"""Command-line interface: ``seqmine`` (or ``python -m repro``).

Subcommands:

* ``seqmine generate`` — write a synthetic dataset (SPMF or CSV).
* ``seqmine mine`` — run the five-phase miner over a dataset file
  (``--save-state`` makes the run updatable).
* ``seqmine append`` — add a delta (new customers, new transactions for
  existing customers) to a partitioned database without rewriting it.
* ``seqmine update`` — incremental re-mine from the saved state: count
  the retained frontier against the delta only (:mod:`repro.incremental`).
* ``seqmine resume`` — restart a checkpointed ``mine`` run
  (``mine --checkpoint-dir``) from its last durable counting pass,
  producing byte-identical output to an uninterrupted run.
* ``seqmine fsck`` — validate a partitioned-database directory and
  repair what is repairable (quarantine damaged delta generations,
  remove interrupted-write orphans and invalid caches).
* ``seqmine serve`` — run the pattern-serving HTTP service over a mined
  pattern file (:mod:`repro.serving`); ``POST /reload`` or ``SIGHUP``
  hot-swaps a freshly mined snapshot with zero downtime.
* ``seqmine query`` — one ``match``/``predict`` query, either against a
  local pattern file (in-process index) or a running server (``--url``).
* ``seqmine info`` — dataset statistics (paper Table 2 columns).
* ``seqmine experiment`` — regenerate a paper table/figure by id.

All subcommands exit 1 with a one-line ``error: ...`` on stderr for
anticipated failures (bad flags, missing/corrupt files) — never a
traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Sequence as PySequence

from repro.analysis.compare import pattern_length_histogram
from repro.miner import ALL_ALGORITHM_NAMES, MiningParams, MiningResult, mine
from repro.core.phase import CountingOptions
from repro.datagen.generator import generate_database, iter_customer_sequences
from repro.datagen.params import SyntheticParams
from repro.db.database import SequenceDatabase
from repro.db.partitioned import (
    MINING_STATE_NAME,
    PartitionedDatabase,
    partitions_for_budget_from_text,
    write_partitions_from_csv,
    write_partitions_from_spmf,
)
from repro.io.csvio import (
    database_to_transactions,
    read_database_csv,
    write_transactions_csv,
)
from repro.io.patterns import patterns_to_json, write_patterns
from repro.io.spmf import read_spmf, write_spmf

#: Partition count when ``--partition-dir`` is given without an explicit
#: ``--partitions`` or ``--max-memory-mb``.
DEFAULT_PARTITIONS = 8


def _fail(message: str) -> int:
    """The single CLI failure path: one ``error:`` line on stderr, exit 1.

    Command handlers never print errors or pick exit codes themselves —
    they raise ``ValueError``/``OSError`` and :func:`main` routes the
    message here. The ``cli-error-policy`` lint rule
    (``python -m tools.lint --explain cli-error-policy``) enforces this
    mechanically.
    """
    print(f"error: {message}", file=sys.stderr)
    return 1


def _load_database(path: str, fmt: str) -> SequenceDatabase:
    if fmt == "spmf":
        return read_spmf(path)
    if fmt == "csv":
        return read_database_csv(path)
    raise ValueError(f"unknown format {fmt!r}")


def _cmd_generate(args: argparse.Namespace) -> int:
    if (args.output is None) == (args.stream_out is None):
        raise ValueError(
            "exactly one of --output or --stream-out is required"
        )
    if args.stream_out is not None and args.format == "csv":
        raise ValueError(
            "--format csv has no effect with --stream-out "
            "(partitions are always binlog); drop the flag or use --output"
        )
    if args.stream_out is None and args.partitions is not None:
        raise ValueError("--partitions only applies to --stream-out")
    params = SyntheticParams.from_name(
        args.dataset, num_customers=args.customers
    )
    if args.stream_out is not None:
        # Out-of-core generation: customers stream straight into binlog
        # partitions; the whole dataset never exists in memory.
        if os.path.exists(os.path.join(args.stream_out, "manifest.json")):
            raise ValueError(
                f"{args.stream_out} already holds a partitioned database; "
                f"delete the directory to regenerate"
            )
        pdb = PartitionedDatabase.create(
            args.stream_out,
            iter_customer_sequences(params, seed=args.seed),
            partitions=(
                DEFAULT_PARTITIONS if args.partitions is None
                else args.partitions
            ),
        )
        stats = pdb.stats()
        print(
            f"wrote {args.stream_out}: {stats.num_customers} customers, "
            f"{stats.num_transactions} transactions in "
            f"{pdb.num_partitions} partitions "
            f"({stats.approx_size_mb:.2f} MB est., "
            f"{pdb.disk_bytes() / (1024 * 1024):.2f} MB on disk)"
        )
        return 0
    db = generate_database(params, seed=args.seed)
    if args.format == "spmf":
        write_spmf(db, args.output)
    else:
        write_transactions_csv(database_to_transactions(db), args.output)
    stats = db.stats()
    print(
        f"wrote {args.output}: {stats.num_customers} customers, "
        f"{stats.num_transactions} transactions "
        f"({stats.approx_size_mb:.2f} MB est.)"
    )
    return 0


def _resolve_mine_database(
    args: argparse.Namespace,
) -> SequenceDatabase | PartitionedDatabase:
    """The database a ``mine`` invocation runs over, per the flag rules.

    Without ``--partition-dir`` this is the in-memory path and ``--input``
    is required. With it, mining is out-of-core: an ``--input`` file is
    first streamed into partitions in that directory (count picked by
    ``--partitions``, by ``--max-memory-mb``, or a default) — refusing
    to clobber a directory that already holds a database — and without
    ``--input`` the directory must already hold one (whose partition
    count is then fixed, so the sizing flags are rejected). Flag misuse
    raises ``ValueError`` so the CLI exits with a one-line error rather
    than a traceback.
    """
    if args.partitions is not None and args.partitions < 1:
        raise ValueError(f"--partitions must be >= 1, got {args.partitions}")
    if args.partition_dir is None:
        for flag, value in (
            ("--partitions", args.partitions),
            ("--max-memory-mb", args.max_memory_mb),
        ):
            if value is not None:
                raise ValueError(f"{flag} requires --partition-dir")
        if args.input is None:
            raise ValueError(
                "--input is required (or pass --partition-dir pointing at "
                "an existing partitioned database)"
            )
        return _load_database(args.input, args.format)
    if args.partitions is not None and args.max_memory_mb is not None:
        raise ValueError(
            "--partitions and --max-memory-mb are mutually exclusive: "
            "the memory budget picks the partition count"
        )
    if args.input is None:
        # Reusing an existing database: its partition count is fixed, so
        # a sizing flag here would be silently dead — reject it instead.
        for flag, value in (
            ("--partitions", args.partitions),
            ("--max-memory-mb", args.max_memory_mb),
        ):
            if value is not None:
                raise ValueError(
                    f"{flag} has no effect when reusing an existing "
                    f"partitioned database (pass --input to re-convert)"
                )
        return PartitionedDatabase.open(args.partition_dir)
    if os.path.exists(os.path.join(args.partition_dir, "manifest.json")):
        if args.checkpoint_dir is not None:
            # A checkpointed convert-and-mine whose earlier attempt got
            # past the conversion: the manifest commit is atomic, so an
            # existing manifest means a complete database — reuse it.
            # Refusing here would make ``resume`` impossible for the
            # convert-then-mine invocation shape.
            return PartitionedDatabase.open(args.partition_dir)
        raise ValueError(
            f"{args.partition_dir} already holds a partitioned database; "
            f"mine it without --input to reuse it, or delete the "
            f"directory to re-convert"
        )
    if args.format == "csv" and args.max_memory_mb is not None:
        raise ValueError(
            "--max-memory-mb cannot be honored for --format csv: CSV rows "
            "are unsorted, so conversion sorts the whole dataset in memory "
            "first; use --partitions, or convert to SPMF"
        )
    if args.max_memory_mb is not None:
        partitions = partitions_for_budget_from_text(
            os.path.getsize(args.input), args.max_memory_mb
        )
    else:
        partitions = args.partitions or DEFAULT_PARTITIONS
    if args.format == "spmf":
        return write_partitions_from_spmf(
            args.input, args.partition_dir, partitions=partitions
        )
    return write_partitions_from_csv(
        args.input, args.partition_dir, partitions=partitions
    )


def _emit_patterns(result: MiningResult, args: argparse.Namespace) -> None:
    """Shared pattern output of ``mine`` and ``update``: a file, JSON on
    stdout, or one human-readable line per pattern."""
    if args.output:
        write_patterns(result.patterns, args.output)
        print(f"wrote {result.num_patterns} patterns to {args.output}",
              file=sys.stderr)
    elif args.json:
        print(patterns_to_json(result.patterns))
    else:
        for pattern in result.patterns:
            print(pattern)


#: Everything a ``mine`` run's outcome depends on, in one place: this is
#: what a checkpoint stores as its configuration, and what ``resume``
#: reconstructs the argument namespace from.
_MINE_CONFIG_KEYS = (
    "input", "format", "partition_dir", "partitions", "max_memory_mb",
    "minsup", "algorithm", "dynamic_step", "max_length", "strategy",
    "workers", "chunk_size", "output", "json", "save_state",
)


def _mine_run_config(args: argparse.Namespace) -> dict[str, Any]:
    config: dict[str, Any] = {
        key: getattr(args, key) for key in _MINE_CONFIG_KEYS
    }
    config["command"] = "mine"
    return config


def _cmd_mine(args: argparse.Namespace) -> int:
    if args.algorithm == "prefixspan":
        # Pattern growth has no candidate counting passes, so the
        # counting-pass knobs would be silently dead — reject them
        # loudly instead (same policy as the partition sizing flags).
        if args.checkpoint_dir is not None:
            raise ValueError(
                "--checkpoint-dir does not apply to --algorithm "
                "prefixspan: pattern growth has no counting passes to "
                "checkpoint"
            )
        if args.strategy is not None:
            raise ValueError(
                "--strategy does not apply to --algorithm prefixspan: "
                "pattern growth never counts candidates"
            )
        if args.save_state:
            raise ValueError(
                "--save-state requires an apriori-family algorithm: "
                "prefixspan does not build incremental mining state"
            )
    if args.save_state and args.partition_dir is None:
        raise ValueError(
            "--save-state requires --partition-dir: the snapshot is "
            "serialized next to the partition manifest"
        )
    checkpoint = None
    if args.checkpoint_dir is not None:
        from repro.io.checkpoint import CheckpointStore

        checkpoint = CheckpointStore.attach(
            args.checkpoint_dir, _mine_run_config(args)
        )
    db = _resolve_mine_database(args)
    params = MiningParams(
        minsup=args.minsup,
        algorithm=args.algorithm,
        dynamic_step=args.dynamic_step,
        max_pattern_length=args.max_length,
        counting=CountingOptions(
            # ``--strategy`` defaults to None so an *explicit* flag is
            # distinguishable from the default (prefixspan rejects the
            # former above); the counting engines see "hashtree" either
            # way.
            strategy=args.strategy if args.strategy is not None else "hashtree",
            workers=args.workers,
            chunk_size=args.chunk_size,
            checkpoint=checkpoint,
        ),
    )
    result = mine(db, params, collect_state=args.save_state)
    print(result.summary(), file=sys.stderr)
    if checkpoint is not None:
        print(
            f"checkpoint {checkpoint.directory}: replayed "
            f"{checkpoint.num_replayed} recorded passes, counted and "
            f"recorded {checkpoint.num_recorded} new",
            file=sys.stderr,
        )
    if args.save_state:
        from repro.io.state import write_mining_state

        state_path = os.path.join(args.partition_dir, MINING_STATE_NAME)
        write_mining_state(result.state, state_path)
        print(
            f"saved mining state to {state_path} "
            f"({len(result.state.sequence_counts)} cached sequence counts, "
            f"{result.state.num_border_sequences()} on the border)",
            file=sys.stderr,
        )
    _emit_patterns(result, args)
    return 0


def _cmd_append(args: argparse.Namespace) -> int:
    from repro.db.database import CustomerSequence

    db = PartitionedDatabase.open(args.partition_dir)
    if args.format == "spmf":
        # SPMF has no customer column (ids are assigned 1..n per file),
        # so every SPMF row is a NEW customer: renumber past the current
        # maximum. Overlays need explicit ids — use --format csv.
        from repro.io.spmf import iter_spmf

        offset = db.max_customer_id()
        customers = (
            CustomerSequence(
                customer_id=customer.customer_id + offset,
                events=customer.events,
            )
            for customer in iter_spmf(args.input)
        )
    else:
        customers = iter(read_database_csv(args.input))
    entry = db.append_delta(customers, partitions=args.partitions)
    print(
        f"appended generation {entry['generation']}: "
        f"{entry['num_new_customers']} new customers, "
        f"{entry['num_overlay_customers']} overlay records; "
        f"database now holds {db.num_customers} customers"
    )
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    from repro.incremental import update_mining
    from repro.io.state import read_mining_state, write_mining_state

    db = PartitionedDatabase.open(args.partition_dir)
    state_path = os.path.join(args.partition_dir, MINING_STATE_NAME)
    state = read_mining_state(state_path)
    if args.minsup is not None and abs(args.minsup - state.minsup) > 1e-12:
        raise ValueError(
            f"--minsup {args.minsup} does not match the snapshot's minsup "
            f"{state.minsup}: an incremental update keeps the snapshot's "
            f"threshold semantics (re-mine with --save-state to change it)"
        )
    counting = CountingOptions(
        strategy=args.strategy,
        workers=args.workers,
        chunk_size=args.chunk_size,
    )
    outcome = update_mining(db, state, counting=counting)
    print(outcome.result.summary(), file=sys.stderr)
    print(outcome.update_stats.summary(), file=sys.stderr)
    write_mining_state(outcome.state, state_path)
    print(f"updated mining state at {state_path} "
          f"(generation {outcome.state.generation})", file=sys.stderr)
    _emit_patterns(outcome.result, args)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.io.checkpoint import CheckpointStore

    config = CheckpointStore.read_config(args.checkpoint_dir)
    missing = [key for key in _MINE_CONFIG_KEYS if key not in config]
    if config.get("command") != "mine" or missing:
        raise ValueError(
            f"{args.checkpoint_dir}: checkpoint does not describe a "
            f"resumable 'mine' run"
        )
    mine_args = argparse.Namespace(
        **{key: config[key] for key in _MINE_CONFIG_KEYS},
        checkpoint_dir=args.checkpoint_dir,
    )
    return _cmd_mine(mine_args)


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.db.fsck import fsck_directory

    report = fsck_directory(args.directory)
    for line in report.lines():
        print(line)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serving.server import PatternServer

    server = PatternServer(args.patterns, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        snapshot = server.snapshot
        print(
            f"serving {snapshot.num_patterns} patterns "
            f"(generation {snapshot.generation}) on {server.address} — "
            f"hot-swap with 'POST /reload' or SIGHUP after re-mining "
            f"{args.patterns}",
            file=sys.stderr,
        )
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _render_query_payload(payload: dict[str, Any], args: argparse.Namespace) -> None:
    """Human/JSON rendering shared by the local and --url query paths."""
    import json as _json

    if args.json:
        print(_json.dumps(payload, indent=2))
        return
    generation = payload.get("generation")
    if generation is not None:
        print(f"generation {generation}", file=sys.stderr)
    if args.predict is not None:
        for entry in payload["predictions"]:
            event = "(" + " ".join(str(i) for i in entry["event"]) + ")"
            print(
                f"{event}  (support {entry['support']:.2%}, "
                f"{entry['count']} customers)"
            )
    else:
        for entry in payload["patterns"]:
            print(
                f"{entry['pattern']}  (support {entry['support']:.2%}, "
                f"{entry['count']} customers)"
            )


def _cmd_query(args: argparse.Namespace) -> int:
    if (args.patterns is None) == (args.url is None):
        raise ValueError("exactly one of --patterns or --url is required")
    if args.predict is not None and args.predict < 0:
        raise ValueError(f"--predict must be >= 0, got {args.predict}")
    if args.url is not None:
        from repro.serving import client

        if args.predict is not None:
            payload = client.predict(args.url, args.seq, args.predict)
        else:
            payload = client.match(args.url, args.seq)
    else:
        from repro.serving.index import (
            PatternIndex,
            parse_query,
            pattern_payload,
            prediction_payload,
        )

        index = PatternIndex.from_file(args.patterns)
        events = parse_query(args.seq)
        if args.predict is not None:
            payload = {
                "predictions": [
                    prediction_payload(p)
                    for p in index.predict_next(events, args.predict)
                ]
            }
        else:
            matched = index.match(events)
            payload = {
                "num_matched": len(matched),
                "patterns": [pattern_payload(p) for p in matched],
            }
    _render_query_payload(payload, args)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    db = _load_database(args.input, args.format)
    for key, value in db.stats().as_row().items():
        print(f"{key}: {value}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.figures import EXPERIMENTS

    if args.list or not args.experiment_id:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    builder = EXPERIMENTS.get(args.experiment_id)
    if builder is None:
        raise ValueError(
            f"unknown experiment {args.experiment_id!r}; use --list"
        )
    result = builder()
    print(result.render(chart=not args.no_chart))
    return 0


def _cmd_histogram(args: argparse.Namespace) -> int:
    db = _load_database(args.input, args.format)
    result = mine(db, MiningParams(minsup=args.minsup))
    for length, count in pattern_length_histogram(result).items():
        print(f"length {length}: {count} maximal patterns")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="seqmine",
        description="Mining Sequential Patterns (Agrawal & Srikant, ICDE 1995) "
        "— AprioriAll / AprioriSome / DynamicSome / PrefixSpan",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("--dataset", default="C10-T2.5-S4-I1.25",
                     help="paper-style name, e.g. C10-T2.5-S4-I1.25")
    gen.add_argument("--customers", type=int, default=SyntheticParams().num_customers)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--format", choices=("spmf", "csv"), default="spmf")
    gen.add_argument("--output", default=None,
                     help="output file (SPMF or CSV per --format)")
    gen.add_argument("--stream-out", default=None, metavar="DIR",
                     help="stream customers straight into a partitioned "
                     "binlog database in DIR (never holds the dataset in "
                     "memory; mutually exclusive with --output)")
    gen.add_argument("--partitions", type=int, default=None,
                     help="partition count for --stream-out "
                     f"(default {DEFAULT_PARTITIONS}); rejected with "
                     "--output, where it would be silently dead")
    gen.set_defaults(func=_cmd_generate)

    mine_cmd = sub.add_parser("mine", help="mine sequential patterns from a file")
    mine_cmd.add_argument("--input", default=None,
                          help="dataset file; optional when --partition-dir "
                          "names an existing partitioned database")
    mine_cmd.add_argument("--format", choices=("spmf", "csv"), default="spmf")
    mine_cmd.add_argument("--partition-dir", default=None, metavar="DIR",
                          help="mine out-of-core: stream --input into disk "
                          "partitions in DIR first (or reuse the "
                          "partitioned database already there), then count "
                          "one partition at a time")
    mine_cmd.add_argument("--partitions", type=int, default=None,
                          help="partition count when converting --input "
                          f"(default {DEFAULT_PARTITIONS}; requires "
                          "--partition-dir)")
    mine_cmd.add_argument("--max-memory-mb", type=float, default=None,
                          help="per-pass memory budget; picks the partition "
                          "count so one resident partition fits the budget "
                          "(requires --partition-dir, excludes --partitions)")
    mine_cmd.add_argument("--minsup", type=float, required=True,
                          help="minimum support as a fraction, e.g. 0.01")
    mine_cmd.add_argument("--algorithm", choices=ALL_ALGORITHM_NAMES,
                          default="aprioriall")
    mine_cmd.add_argument("--dynamic-step", type=int, default=2)
    mine_cmd.add_argument("--max-length", type=int, default=None)
    mine_cmd.add_argument("--strategy",
                          choices=("hashtree", "naive", "bitset", "vertical"),
                          default=None,
                          help="support-counting backend (default "
                          "hashtree): the paper's candidate hash tree, "
                          "the quadratic reference, the bitset-compiled "
                          "database (compile customers once, count with "
                          "integer bit-ops), or the vertical id-list "
                          "format (invert once, count each candidate by "
                          "joining its parents' memoized support lists — "
                          "no database scan). Does not apply to "
                          "--algorithm prefixspan, which never counts "
                          "candidates")
    mine_cmd.add_argument("--workers", type=int, default=1,
                          help="worker processes for support counting "
                          "(1 = serial, 0 = all CPUs)")
    mine_cmd.add_argument("--chunk-size", type=int, default=None,
                          help="items per counting shard (default: one "
                          "shard per worker). The sharded unit depends "
                          "on the path: customers for the in-memory "
                          "scanning strategies, candidates for "
                          "--strategy vertical, partitions with "
                          "--partition-dir, frequent seed items for "
                          "--algorithm prefixspan")
    mine_cmd.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                          help="record each completed counting pass "
                          "durably in DIR; after a crash, 'seqmine "
                          "resume --checkpoint-dir DIR' restarts from "
                          "the last durable pass and produces "
                          "byte-identical output")
    mine_cmd.add_argument("--output", default=None,
                          help="write patterns to this file instead of stdout")
    mine_cmd.add_argument("--json", action="store_true",
                          help="print patterns as JSON")
    mine_cmd.add_argument("--save-state", action="store_true",
                          help="serialize the run's incremental-mining "
                          "snapshot (large sets + negative border with "
                          "exact supports) next to the partition "
                          "manifest, making the result updatable with "
                          "'seqmine append' + 'seqmine update' "
                          "(requires --partition-dir)")
    mine_cmd.set_defaults(func=_cmd_mine)

    append_cmd = sub.add_parser(
        "append",
        help="append a delta to a partitioned database (no rewrite)")
    append_cmd.add_argument("--partition-dir", required=True, metavar="DIR",
                            help="directory holding the partitioned database")
    append_cmd.add_argument("--input", required=True,
                            help="delta dataset file. SPMF rows (no "
                            "customer column) are always appended as new "
                            "customers. CSV rows carry customer_id: ids "
                            "above the database's current maximum are "
                            "new customers, ids at or below it add "
                            "later transactions to that existing "
                            "customer (an overlay)")
    append_cmd.add_argument("--format", choices=("spmf", "csv"),
                            default="spmf")
    append_cmd.add_argument("--partitions", type=int, default=1,
                            help="binlog partitions for the delta's new "
                            "customers (default 1; deltas are small)")
    append_cmd.set_defaults(func=_cmd_append)

    update_cmd = sub.add_parser(
        "update",
        help="incrementally re-mine after 'append', from the saved state")
    update_cmd.add_argument("--partition-dir", required=True, metavar="DIR",
                            help="directory holding the partitioned "
                            "database and its mining_state.json (from "
                            "'seqmine mine --save-state')")
    update_cmd.add_argument("--minsup", type=float, default=None,
                            help="optional cross-check: must equal the "
                            "snapshot's minsup (the update keeps the "
                            "snapshot's threshold semantics)")
    update_cmd.add_argument("--strategy",
                            choices=("hashtree", "naive", "bitset",
                                     "vertical"),
                            default="hashtree",
                            help="counting backend for the delta passes "
                            "(independent of what the snapshot run used)")
    update_cmd.add_argument("--workers", type=int, default=1,
                            help="worker processes for delta counting "
                            "(1 = serial, 0 = all CPUs)")
    update_cmd.add_argument("--chunk-size", type=int, default=None,
                            help="items per counting shard "
                            "(default: one shard per worker)")
    update_cmd.add_argument("--output", default=None,
                            help="write patterns to this file instead of "
                            "stdout")
    update_cmd.add_argument("--json", action="store_true",
                            help="print patterns as JSON")
    update_cmd.set_defaults(func=_cmd_update)

    resume_cmd = sub.add_parser(
        "resume",
        help="restart an interrupted 'mine --checkpoint-dir' run from "
        "its last durable counting pass")
    resume_cmd.add_argument("--checkpoint-dir", required=True, metavar="DIR",
                            help="checkpoint directory of the "
                            "interrupted run; the full mine "
                            "configuration is restored from it")
    resume_cmd.set_defaults(func=_cmd_resume)

    fsck_cmd = sub.add_parser(
        "fsck",
        help="validate a partitioned-database directory and repair "
        "what is repairable")
    fsck_cmd.add_argument("directory",
                          help="directory holding the partitioned "
                          "database; damaged delta generations are "
                          "quarantined (*.quarantined), interrupted "
                          "writes and invalid caches removed")
    fsck_cmd.set_defaults(func=_cmd_fsck)

    serve_cmd = sub.add_parser(
        "serve",
        help="serve match/predict queries over a mined pattern file")
    serve_cmd.add_argument("--patterns", required=True,
                           help="pattern file from 'seqmine mine --output' "
                           "(versioned header required); re-mine it and "
                           "POST /reload (or SIGHUP) to hot-swap")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8765,
                           help="listening port (default 8765; 0 picks a "
                           "free port, printed on startup)")
    serve_cmd.set_defaults(func=_cmd_serve)

    query_cmd = sub.add_parser(
        "query",
        help="one match/predict query against a pattern file or server")
    query_cmd.add_argument("--patterns", default=None,
                           help="query an in-process index built from this "
                           "pattern file (mutually exclusive with --url)")
    query_cmd.add_argument("--url", default=None,
                           help="query a running 'seqmine serve' instance, "
                           "e.g. http://127.0.0.1:8765")
    query_cmd.add_argument("--seq", required=True,
                           help="the customer history in the paper's "
                           "notation, e.g. '<(30)(40 70)>'; '<>' is the "
                           "empty history")
    query_cmd.add_argument("--predict", type=int, default=None, metavar="K",
                           help="rank the top K next-event candidates "
                           "instead of listing matched patterns")
    query_cmd.add_argument("--json", action="store_true",
                           help="print the full JSON payload")
    query_cmd.set_defaults(func=_cmd_query)

    info = sub.add_parser("info", help="print dataset statistics")
    info.add_argument("--input", required=True)
    info.add_argument("--format", choices=("spmf", "csv"), default="spmf")
    info.set_defaults(func=_cmd_info)

    hist = sub.add_parser("histogram", help="pattern-length histogram")
    hist.add_argument("--input", required=True)
    hist.add_argument("--format", choices=("spmf", "csv"), default="spmf")
    hist.add_argument("--minsup", type=float, required=True)
    hist.set_defaults(func=_cmd_histogram)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("experiment_id", nargs="?", default=None)
    exp.add_argument("--list", action="store_true", help="list experiment ids")
    exp.add_argument("--no-chart", action="store_true")
    exp.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: PySequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except (ValueError, OSError) as exc:
        return _fail(str(exc))


if __name__ == "__main__":
    raise SystemExit(main())
