#!/usr/bin/env python3
"""The paper's motivating scenario: sequel-watching in a video-rental store.

The introduction of the 1995 paper opens with exactly this pattern:
"customers typically rent 'Star Wars', then 'Empire Strikes Back', and
then 'Return of the Jedi'" — and notes that the rentals need not be
consecutive, and that itemsets (renting two tapes together) count too.

This example builds a small named-item catalog, simulates rental
histories with that behavior planted plus plenty of noise, mines them,
and shows the trilogy emerging as a maximal sequential pattern.

Run:  python examples/video_rental.py
"""

import random

from repro import SequenceDatabase, mine_sequential_patterns

CATALOG = {
    1: "Star Wars",
    2: "Empire Strikes Back",
    3: "Return of the Jedi",
    4: "Casablanca",
    5: "Jaws",
    6: "Alien",
    7: "Aliens",
    8: "The Godfather",
    9: "Annie Hall",
    10: "Rocky",
    11: "E.T.",
    12: "Blade Runner",
}

TRILOGY = (1, 2, 3)       # rented in order by fans
DOUBLE_FEATURE = (6, 7)   # Alien then Aliens


def simulate_rentals(num_customers: int = 400, seed: int = 7) -> SequenceDatabase:
    rng = random.Random(seed)
    customers = []
    for _ in range(num_customers):
        events: list[tuple[int, ...]] = []
        n_visits = rng.randint(3, 8)
        # 35% of customers are trilogy fans, 20% watch the Alien pair.
        plans: list[tuple[int, ...]] = []
        if rng.random() < 0.35:
            plans.append(TRILOGY)
        if rng.random() < 0.20:
            plans.append(DOUBLE_FEATURE)
        planned_positions: dict[int, list[int]] = {}
        for plan_index, plan in enumerate(plans):
            positions = sorted(rng.sample(range(n_visits), min(len(plan), n_visits)))
            planned_positions[plan_index] = positions
        for visit in range(n_visits):
            tapes = set()
            for plan_index, plan in enumerate(plans):
                positions = planned_positions[plan_index]
                if visit in positions:
                    tapes.add(plan[positions.index(visit)])
            # random impulse rentals
            for _ in range(rng.randint(0, 2)):
                tapes.add(rng.choice(list(CATALOG)))
            if tapes:
                events.append(tuple(sorted(tapes)))
        if events:
            customers.append(events)
    return SequenceDatabase.from_sequences(customers)


def render(sequence) -> str:
    return " → ".join(
        "(" + " + ".join(CATALOG[i] for i in event) + ")" for event in sequence
    )


def main() -> None:
    db = simulate_rentals()
    stats = db.stats()
    print(
        f"simulated {stats.num_customers} customers, "
        f"{stats.num_transactions} store visits"
    )

    result = mine_sequential_patterns(db, minsup=0.15, algorithm="apriorisome")
    print(f"\nmaximal sequential patterns at 15% support "
          f"({result.num_patterns} total):\n")
    for pattern in result.patterns:
        if pattern.sequence.length < 2:
            continue  # skip single-visit patterns for readability
        print(f"  {pattern.support:6.1%}  {render(pattern.sequence)}")

    trilogy = [
        p for p in result.patterns
        if tuple(e[0] for e in p.sequence.events) == TRILOGY
        and p.sequence.length == 3
    ]
    assert trilogy, "expected the Star Wars trilogy pattern to be frequent"
    print("\nthe sequel pattern from the paper's introduction is found:")
    print(f"  {render(trilogy[0].sequence)}  "
          f"({trilogy[0].count} of {db.num_customers} customers)")


if __name__ == "__main__":
    main()
