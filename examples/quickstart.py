#!/usr/bin/env python3
"""Quickstart: mine the paper's own example database.

This is the running example of Section 2 of "Mining Sequential Patterns"
(Agrawal & Srikant, ICDE 1995): five customers of a video-rental store.
With a 25 % minimum support the answer is exactly two maximal patterns,
<(30)(90)> and <(30)(40 70)> — every other frequent sequence (like
<(30)>) is contained in one of them.

Run:  python examples/quickstart.py
"""

from repro import SequenceDatabase, mine_sequential_patterns

# One row per customer; each inner tuple is a transaction (itemset),
# already in time order. Items are product ids.
db = SequenceDatabase.from_sequences(
    [
        [(30,), (90,)],                    # customer 1
        [(10, 20), (30,), (40, 60, 70)],   # customer 2
        [(30, 50, 70)],                    # customer 3
        [(30,), (40, 70), (90,)],          # customer 4
        [(90,)],                           # customer 5
    ]
)


def main() -> None:
    result = mine_sequential_patterns(db, minsup=0.25)

    print(f"customers:        {result.num_customers}")
    print(f"support threshold: {result.threshold} customers")
    print(f"litemsets found:  {result.num_litemsets}")
    print(f"maximal patterns: {result.num_patterns}")
    print()
    for pattern in result.patterns:
        print(f"  {pattern}")

    # The same answer comes out of all three algorithms of the paper.
    for algorithm in ("aprioriall", "apriorisome", "dynamicsome"):
        alt = mine_sequential_patterns(db, minsup=0.25, algorithm=algorithm)
        assert alt.sequences() == result.sequences(), algorithm
    print("\nAprioriAll, AprioriSome and DynamicSome all agree.")


if __name__ == "__main__":
    main()
