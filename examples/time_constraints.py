#!/usr/bin/env python3
"""Time-constrained mining — the 1995 paper's future work, implemented.

The paper's conclusion proposes extending sequential patterns with time
gaps and sliding windows (published a year later as GSP). This example
mines a subscription-service event log three ways:

* unconstrained (the 1995 semantics),
* with ``max_gap=30`` — "the follow-up purchase must happen within a
  month to count as a funnel",
* with ``window_size=2`` — "items bought within two days count as one
  basket".

Run:  python examples/time_constraints.py
"""

import random

from repro.db.records import Transaction
from repro.extensions.timeconstraints import TimeConstraints, mine_time_constrained

TRIAL, UPGRADE, CANCEL, ADDON_A, ADDON_B = 1, 2, 3, 4, 5
NAMES = {
    TRIAL: "trial",
    UPGRADE: "upgrade",
    CANCEL: "cancel",
    ADDON_A: "addon-A",
    ADDON_B: "addon-B",
}


def simulate(num_customers: int = 200, seed: int = 11) -> list[Transaction]:
    rng = random.Random(seed)
    transactions: list[Transaction] = []
    for customer in range(1, num_customers + 1):
        day = rng.randint(1, 10)
        transactions.append(Transaction(customer, day, (TRIAL,)))
        if rng.random() < 0.6:  # fast upgraders: within a month
            day += rng.randint(3, 25)
            transactions.append(Transaction(customer, day, (UPGRADE,)))
            # add-ons often bought on neighbouring days
            if rng.random() < 0.5:
                transactions.append(
                    Transaction(customer, day + 1, (ADDON_A,))
                )
                transactions.append(
                    Transaction(customer, day + 2, (ADDON_B,))
                )
        elif rng.random() < 0.5:  # slow upgraders: after a quarter
            day += rng.randint(60, 120)
            transactions.append(Transaction(customer, day, (UPGRADE,)))
        else:
            day += rng.randint(30, 90)
            transactions.append(Transaction(customer, day, (CANCEL,)))
    return transactions


def render(pattern) -> str:
    return " → ".join(
        "(" + "+".join(NAMES[i] for i in event) + ")"
        for event in pattern.sequence
    )


def show(title: str, patterns, minimum_length: int = 2) -> None:
    print(f"\n{title}")
    for pattern in patterns:
        if pattern.sequence.length >= minimum_length or pattern.sequence.size > 1:
            print(f"  {pattern.support:6.1%}  {render(pattern)}")


def main() -> None:
    log = simulate()
    print(f"{len(log)} events from 200 subscribers")

    unconstrained = mine_time_constrained(log, minsup=0.10)
    show("unconstrained (1995 semantics) — all frequent sequences:",
         unconstrained)

    monthly = mine_time_constrained(
        log, minsup=0.10, constraints=TimeConstraints(max_gap=30)
    )
    show("max_gap=30 days — only fast trial→upgrade funnels count:", monthly)

    basket = mine_time_constrained(
        log, minsup=0.10, constraints=TimeConstraints(window_size=2)
    )
    show("window=2 days — neighbouring purchases form one basket:", basket)

    plain = {str(p.sequence) for p in unconstrained}
    gapped = {str(p.sequence) for p in monthly}
    assert gapped <= plain, "max_gap can only shrink the frequent set"
    print(f"\nmax_gap removed {len(plain) - len(gapped)} of "
          f"{len(plain)} frequent sequences")


if __name__ == "__main__":
    main()
