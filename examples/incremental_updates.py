#!/usr/bin/env python3
"""Incremental updates: mine once, then absorb new data without re-mining.

The walkthrough mirrors a production cadence:

1. build a partitioned database and mine it with ``collect_state=True``
   — the result carries a :class:`repro.incremental.MiningState`
   snapshot (large sets + negative border with exact supports);
2. ``append_delta`` a day of new data — new customers *and* additional
   transactions for existing customers (overlays) — without rewriting
   any existing partition file;
3. ``update_mining`` re-mines from the snapshot, counting the retained
   frontier against the delta only, and provably matches a full re-mine.

The same flow on the command line::

    seqmine generate --customers 5000 --output base.spmf
    seqmine mine --input base.spmf --partition-dir parts/ \
        --minsup 0.02 --save-state
    seqmine generate --customers 250 --seed 1 --output delta.spmf
    seqmine append --partition-dir parts/ --input delta.spmf
    seqmine update --partition-dir parts/

Run:  python examples/incremental_updates.py
"""

import tempfile
import time
from pathlib import Path

from repro import CustomerSequence, MiningParams, PartitionedDatabase, mine
from repro.datagen.generator import generate_database
from repro.datagen.params import SyntheticParams
from repro.incremental import update_mining

PARAMS = SyntheticParams.from_name("C10-T2.5-S4-I1.25", num_customers=2100)
MINSUP = 0.03


def main() -> None:
    full = generate_database(PARAMS, seed=7)
    # Day 0 owns customers 1..2000; the "next day" brings 100 new
    # customers plus follow-up purchases for some existing ones.
    base, delta = [], []
    for customer in full:
        if customer.customer_id > 2000:
            delta.append(customer)
        elif customer.customer_id % 50 == 0 and len(customer.events) >= 2:
            half = len(customer.events) // 2
            base.append(CustomerSequence(customer.customer_id,
                                         customer.events[:half]))
            delta.append(CustomerSequence(customer.customer_id,
                                          customer.events[half:]))
        else:
            base.append(customer)
    delta.sort(key=lambda c: c.customer_id)

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "parts"
        db = PartitionedDatabase.create(directory, base, partitions=4)
        params = MiningParams(minsup=MINSUP)

        # --- Day 0: the full five-phase mine, snapshotting the frontier.
        base_result = mine(db, params, collect_state=True)
        state = base_result.state
        print(f"day 0: {base_result.num_patterns} maximal patterns from "
              f"{db.num_customers} customers")
        print(f"  snapshot: {len(state.sequence_counts)} cached sequence "
              f"counts, {state.num_border_sequences()} on the negative "
              f"border")

        # --- Day 1: append the delta. Existing partitions are untouched;
        # new customers become a fresh binlog partition, follow-up
        # transactions become overlay records.
        db.append_delta(delta)
        db = PartitionedDatabase.open(directory)
        print(f"day 1: appended -> generation {db.generation}, "
              f"{db.num_customers} customers")

        # --- Incremental re-mine vs the full pipeline.
        started = time.perf_counter()
        outcome = update_mining(db, state)
        update_seconds = time.perf_counter() - started

        started = time.perf_counter()
        full_result = mine(db, params)
        full_seconds = time.perf_counter() - started

        print(f"  update:       {update_seconds * 1000:7.1f} ms "
              f"({outcome.update_stats.summary()})")
        print(f"  full re-mine: {full_seconds * 1000:7.1f} ms")

        mine_lines = [str(p) for p in full_result.patterns]
        update_lines = [str(p) for p in outcome.result.patterns]
        assert update_lines == mine_lines, "update must equal full re-mine"
        print(f"  identical answers: {len(update_lines)} patterns, e.g.")
        for line in update_lines[:3]:
            print(f"    {line}")

        # outcome.state covers the grown database: chain the next day
        # from it the same way.
        assert outcome.state.generation == db.generation


if __name__ == "__main__":
    main()
