#!/usr/bin/env python3
"""Compare the paper's three algorithms on a synthetic retail workload.

Generates the paper's C10-T2.5-S4-I1.25 dataset at laptop scale and runs
AprioriAll, AprioriSome and DynamicSome over a small minimum-support
sweep — a miniature of the paper's Figure 6. The three algorithms must
find identical pattern sets; they differ in how many candidates they
count, which is what the table shows.

Run:  python examples/algorithm_comparison.py
"""

from repro import SyntheticParams, generate_database
from repro.analysis.report import format_table
from repro.experiments.harness import RunRecord, run_mining

DATASET = "C10-T2.5-S4-I1.25"
MINSUPS = (0.025, 0.015)


def main() -> None:
    params = SyntheticParams.from_name(DATASET, num_customers=500)
    print(f"generating {DATASET} with |D|={params.num_customers} ...")
    db = generate_database(params, seed=1995)
    print(db.stats().as_row())

    rows = []
    answers: dict[float, list] = {}
    for minsup in MINSUPS:
        for algorithm in ("aprioriall", "apriorisome", "dynamicsome"):
            record, result = run_mining(
                db, dataset=DATASET, algorithm=algorithm, minsup=minsup
            )
            rows.append(record.as_row())
            previous = answers.setdefault(minsup, result.sequences())
            assert previous == result.sequences(), (
                f"{algorithm} disagreed at minsup={minsup}!"
            )

    print()
    print(format_table(RunRecord.ROW_HEADERS, rows,
                       title=f"algorithm comparison on {DATASET}"))
    print("\nall three algorithms returned identical maximal patterns "
          f"at every support level ({[len(v) for v in answers.values()]} patterns).")


if __name__ == "__main__":
    main()
