#!/usr/bin/env python3
"""File-based workflow: generate → save (SPMF) → reload → mine → export.

Shows the I/O layer and the CLI-equivalent programmatic flow a downstream
user would run on their own data: the SPMF format is what public
sequence-mining datasets (Kosarak, Sign, FIFA, ...) are distributed in.

Run:  python examples/spmf_workflow.py
"""

import tempfile
from pathlib import Path

from repro import SyntheticParams, generate_database, mine_sequential_patterns
from repro.io.patterns import read_patterns, write_patterns
from repro.io.spmf import read_spmf, write_spmf


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="seqmine-"))
    data_path = workdir / "C10-T2.5-S4-I1.25.spmf"
    patterns_path = workdir / "patterns.txt"

    # 1. Generate a synthetic dataset and save it in SPMF format.
    params = SyntheticParams.from_name("C10-T2.5-S4-I1.25", num_customers=300)
    db = generate_database(params, seed=42)
    lines = write_spmf(db, data_path)
    print(f"wrote {lines} customer sequences to {data_path}")

    # 2. Reload it (this is where you would point at your own file).
    reloaded = read_spmf(data_path)
    assert reloaded.num_customers == db.num_customers
    print(f"reloaded: {reloaded.stats().as_row()}")

    # 3. Mine.
    result = mine_sequential_patterns(reloaded, minsup=0.02,
                                      algorithm="apriorisome")
    print(f"\n{result.summary()}")

    # 4. Export the patterns and read them back.
    write_patterns(result.patterns, patterns_path)
    roundtrip = read_patterns(patterns_path)
    assert len(roundtrip) == result.num_patterns
    print(f"wrote {result.num_patterns} patterns to {patterns_path}")
    print("\nfirst few patterns:")
    for pattern in result.patterns[:5]:
        print(f"  {pattern}")

    print(f"\nequivalent CLI:\n"
          f"  seqmine generate --dataset C10-T2.5-S4-I1.25 --customers 300 "
          f"--seed 42 --output {data_path}\n"
          f"  seqmine mine --input {data_path} --minsup 0.02 "
          f"--algorithm apriorisome --output {patterns_path}")


if __name__ == "__main__":
    main()
