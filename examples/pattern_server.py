#!/usr/bin/env python3
"""Serve mined patterns over HTTP and hot-swap a new snapshot live.

The walkthrough mirrors a production deploy:

1. generate a synthetic dataset and mine it into a versioned patterns
   file (the exact artifact ``seqmine mine --output`` publishes);
2. start the asyncio :class:`repro.serving.PatternServer` on a free
   port and answer ``/match`` and ``/predict`` queries over real TCP;
3. re-mine at a lower minimum support — more patterns — rewrite the
   file atomically, hit ``/reload``, and watch the same query answer
   from the new snapshot generation with zero downtime.

Every step asserts its own invariants; the script exits nonzero if the
served answers ever disagree with a locally built index.

Run:  PYTHONPATH=src python examples/pattern_server.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.cli import main as seqmine
from repro.serving import PatternIndex, PatternServer
from repro.serving.client import match, predict, reload_server, server_stats

DATASET = "C10-T2.5-S4-I1.25"
CUSTOMERS = 120
SEED = 7


def mine(data: Path, patterns: Path, minsup: float) -> None:
    code = seqmine([
        "mine", "--input", str(data), "--minsup", str(minsup),
        "--output", str(patterns),
    ])
    assert code == 0, f"mining at minsup={minsup} failed"


async def serve_and_query(data: Path, patterns: Path) -> None:
    server = PatternServer(patterns)
    await server.start()
    base_url = server.address
    loop = asyncio.get_running_loop()
    try:
        stats = await loop.run_in_executor(None, server_stats, base_url)
        print(f"serving {stats['patterns']} patterns "
              f"(generation {stats['generation']}) at {base_url}")

        # Query with each mined pattern's own sequence: it must match.
        local = PatternIndex.from_file(patterns)
        some_pattern = next(iter(local.patterns()))
        query = str(some_pattern.sequence)
        answer = await loop.run_in_executor(None, match, base_url, query)
        assert answer["num_matched"] >= 1, f"{query} should match itself"
        print(f"match {query}: {answer['num_matched']} pattern(s)")

        ranked = await loop.run_in_executor(
            None, lambda: predict(base_url, "<>", 3)
        )
        print("top openings:", [p["event"] for p in ranked["predictions"]])

        # Deploy a richer snapshot: lower minsup → strictly more
        # patterns → hot-swap without restarting the server.
        mine(data, patterns, minsup=0.04)
        swapped = await loop.run_in_executor(None, reload_server, base_url)
        assert swapped["generation"] == 2, swapped
        after = await loop.run_in_executor(None, server_stats, base_url)
        assert after["patterns"] >= stats["patterns"]
        print(f"hot-swapped to generation {after['generation']}: "
              f"{stats['patterns']} -> {after['patterns']} patterns, "
              f"0 requests dropped")

        # The served answer must agree with a locally rebuilt index.
        rebuilt = PatternIndex.from_file(patterns)
        answer = await loop.run_in_executor(None, match, base_url, query)
        assert answer["num_matched"] == len(
            rebuilt.match(some_pattern.sequence.events)
        )
    finally:
        await server.close()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        data = Path(tmp) / "data.spmf"
        patterns = Path(tmp) / "patterns.txt"
        assert seqmine([
            "generate", "--dataset", DATASET,
            "--customers", str(CUSTOMERS), "--seed", str(SEED),
            "--output", str(data),
        ]) == 0
        mine(data, patterns, minsup=0.06)
        asyncio.run(serve_and_query(data, patterns))
    print("pattern_server example: all assertions passed")


if __name__ == "__main__":
    main()
