#!/usr/bin/env python3
"""Walk through the five phases of the paper's method, one at a time.

`mine_sequential_patterns` hides the pipeline; this example runs each
phase by hand on the paper's example database and prints the intermediate
artifacts — the litemsets, the integer mapping, the transformed customer
sequences, the large sequences per length, and finally the maximal
answer. It reproduces, step by step, the worked example in Section 3 of
the paper.

Run:  python examples/pipeline_walkthrough.py
"""

from repro import SequenceDatabase, Transaction
from repro.core.aprioriall import apriori_all
from repro.core.maximal import maximal_sequences, sequence_of_events
from repro.db.transform import transform_database
from repro.itemsets.apriori import find_litemsets
from repro.itemsets.litemsets import LitemsetCatalog

MINSUP = 0.25

# Phase 1 input: the raw transaction table, deliberately out of order.
RAW_ROWS = [
    Transaction(2, 200, (30,)),
    Transaction(1, 100, (30,)),
    Transaction(4, 100, (30,)),
    Transaction(5, 100, (90,)),
    Transaction(2, 100, (10, 20)),
    Transaction(3, 100, (30, 50, 70)),
    Transaction(1, 200, (90,)),
    Transaction(4, 300, (90,)),
    Transaction(4, 200, (40, 70)),
    Transaction(2, 300, (40, 60, 70)),
]


def main() -> None:
    # ---- Phase 1: sort ------------------------------------------------
    db = SequenceDatabase.from_transactions(RAW_ROWS)
    print("phase 1 — sort: customer sequences")
    for customer in db:
        print(f"  {customer.customer_id}: {customer.as_sequence()}")

    # ---- Phase 2: litemsets -------------------------------------------
    litemsets = find_litemsets(db, MINSUP)
    catalog = LitemsetCatalog.from_result(litemsets)
    print(f"\nphase 2 — litemset: {len(catalog)} large itemsets "
          f"(threshold {db.threshold(MINSUP)} customers)")
    for itemset in catalog:
        lid = catalog.id_of(itemset)
        print(f"  {itemset!r:12} -> id {lid} (support {catalog.support_of(lid)})")

    # ---- Phase 3: transformation --------------------------------------
    tdb = transform_database(db, catalog)
    print("\nphase 3 — transformation: events as litemset-id sets")
    for cid, events in zip(tdb.customer_ids, tdb.sequences):
        rendered = " ".join("{" + ",".join(map(str, sorted(e))) + "}" for e in events)
        print(f"  {cid}: {rendered}")
    print(f"  (dropped {tdb.num_dropped_customers} empty customers)")

    # ---- Phase 4: sequence (AprioriAll here) ---------------------------
    phase = apriori_all(tdb, db.threshold(MINSUP))
    print("\nphase 4 — sequence: large sequences per length")
    for length, larges in sorted(phase.large_by_length.items()):
        rendered = ", ".join(
            f"{catalog.expand(ids)}:{count}" for ids, count in sorted(larges.items())
        )
        print(f"  L{length}: {rendered}")

    # ---- Phase 5: maximal ----------------------------------------------
    expanded = {
        catalog.expand_events(ids): count
        for ids, count in phase.all_large().items()
    }
    maximal = maximal_sequences(expanded)
    print("\nphase 5 — maximal: the answer")
    for events, count in sorted(maximal.items(), key=lambda kv: len(kv[0])):
        print(f"  {sequence_of_events(events)} (support {count})")


if __name__ == "__main__":
    main()
