from setuptools import find_packages, setup

setup(
    name="repro-sequential-patterns",
    version="1.1.0",
    description=(
        "Reproduction of Agrawal & Srikant, 'Mining Sequential Patterns' "
        "(ICDE 1995): AprioriAll/AprioriSome/DynamicSome with four "
        "counting backends, out-of-core and incremental mining"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: the package ships inline annotations; the py.typed marker
    # tells type checkers in downstream projects to use them.
    package_data={"repro": ["py.typed"]},
    zip_safe=False,
    python_requires=">=3.11",
    install_requires=["numpy"],
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Information Analysis",
        "Typing :: Typed",
    ],
)
