#!/usr/bin/env python3
"""Stdlib-only line-coverage measurement for ``src/repro``.

The dev container has no ``coverage``/``pytest-cov``, but the CI
coverage job needs a ``--cov-fail-under`` threshold anchored to a real
measurement. This tool provides that anchor: it runs the pytest suite
under a ``sys.settrace`` collector restricted to files below
``src/repro`` and reports executed/executable line percentages per file
and overall.

Two accuracy caveats against coverage.py (both conservative — they can
only *understate* the percentage this tool reports relative to
pytest-cov, or overstate the denominator):

* executable lines are taken from compiled code objects' ``co_lines()``
  tables, which include a few rows coverage.py excludes (docstring
  loads, ``else``/decorator bookkeeping);
* lines executed only inside ``multiprocessing`` worker processes are
  not seen (pytest-cov misses them too unless configured for
  multiprocessing concurrency).

To keep the slowdown tolerable the collector disables itself per code
object once every one of that object's lines has been seen — tracing
cost concentrates in the first execution of each function.

Run:  PYTHONPATH=src python tools/measure_coverage.py [pytest args...]
      (HYPOTHESIS_PROFILE=fast recommended; defaults to tests/)

With ``--merge-into FILE.json`` the executed-line sets are unioned into
``FILE.json`` across invocations, so the suite can be measured in
per-file chunks (useful because tracing multiplies the cost of the
heaviest property tests by ~20×: chunking lets a driver put a timeout
on each file and still accumulate one total).
"""

from __future__ import annotations

import json
import os
import sys
from types import CodeType, FrameType
from typing import Any, Callable, Optional

#: A settrace-compatible local trace function (returns itself or None).
TraceFunc = Callable[[FrameType, str, Any], "Optional[TraceFunc]"]

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_PREFIX = os.path.join(REPO, "src", "repro") + os.sep

# Mirror `python -m pytest` run from the repo root: the root on sys.path
# (the tests import `tests.strategies`) and src for the library.
for entry in (REPO, os.path.join(REPO, "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)


def executable_lines() -> dict[str, set[int]]:
    """Statically collect every executable line under src/repro."""
    lines: dict[str, set[int]] = {}
    for root, _dirs, files in os.walk(os.path.join(REPO, "src", "repro")):
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            with open(path, "r", encoding="utf-8") as handle:
                code = compile(handle.read(), path, "exec")
            file_lines: set[int] = set()
            stack = [code]
            while stack:
                obj = stack.pop()
                for _start, _end, line in obj.co_lines():
                    if line is not None:
                        file_lines.add(line)
                stack.extend(
                    const for const in obj.co_consts
                    if isinstance(const, type(code))
                )
            lines[path] = file_lines
    return lines


def main() -> int:
    import pytest

    merge_path = None
    argv = sys.argv[1:]
    if "--merge-into" in argv:
        at = argv.index("--merge-into")
        merge_path = argv[at + 1]
        argv = argv[:at] + argv[at + 2 :]

    expected = executable_lines()
    seen: dict[str, set[int]] = {path: set() for path in expected}
    if merge_path and os.path.exists(merge_path):
        with open(merge_path, "r", encoding="utf-8") as handle:
            for path, lines in json.load(handle).items():
                seen.setdefault(path, set()).update(lines)
    #: code objects whose lines are all covered — stop tracing them.
    saturated: set[CodeType] = set()
    remaining: dict[CodeType, set[int]] = {}

    def local_trace(
        frame: FrameType, event: str, _arg: Any
    ) -> "TraceFunc | None":
        if event != "line":
            return local_trace
        code = frame.f_code
        want = remaining.get(code)
        if want is None:
            want = remaining[code] = {
                line
                for _s, _e, line in code.co_lines()
                if line is not None
            }
        want.discard(frame.f_lineno)
        seen[code.co_filename].add(frame.f_lineno)
        if not want:
            saturated.add(code)
            return None
        return local_trace

    def global_trace(
        frame: FrameType, event: str, _arg: Any
    ) -> "TraceFunc | None":
        if event != "call":
            return None
        code = frame.f_code
        if code in saturated or not code.co_filename.startswith(SRC_PREFIX):
            return None
        return local_trace

    # Import-time lines run before pytest starts collecting; trace from
    # here so module bodies count.
    sys.settrace(global_trace)
    try:
        exit_code = pytest.main(
            argv or ["tests/", "-q", "-p", "no:cacheprovider"]
        )
    finally:
        sys.settrace(None)

    if merge_path:
        with open(merge_path, "w", encoding="utf-8") as handle:
            json.dump({path: sorted(lines) for path, lines in seen.items()},
                      handle)

    total_expected = 0
    total_seen = 0
    rows = []
    for path in sorted(expected):
        want = expected[path]
        got = seen[path] & want
        total_expected += len(want)
        total_seen += len(got)
        pct = 100.0 * len(got) / len(want) if want else 100.0
        rows.append((pct, len(got), len(want), os.path.relpath(path, REPO)))
    print()
    print(f"{'cover':>7}  {'lines':>11}  file")
    for pct, got, want, rel in rows:
        print(f"{pct:6.1f}%  {got:5d}/{want:<5d}  {rel}")
    overall = 100.0 * total_seen / total_expected if total_expected else 100.0
    print(f"\nTOTAL {overall:.2f}% ({total_seen}/{total_expected} lines), "
          f"pytest exit {exit_code}")
    return int(exit_code)


if __name__ == "__main__":
    raise SystemExit(main())
