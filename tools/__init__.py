"""Developer tooling for the repository (not part of the ``repro`` package).

``tools.lint`` is the repo-specific static-analysis pass; run it as
``python -m tools.lint`` from the repository root.
"""
