"""A repo-specific AST linter enforcing invariants types cannot express.

``mypy --strict`` checks that every seam is *called* correctly; the rules
here check properties of the *module graph and source shape* that no
annotation can state: that the import graph is acyclic, that ``core/``
never imports the storage or I/O layers, that ``__all__`` surfaces are
consistent, that the deterministic subsystems touch no entropy source,
and that the CLI routes every failure through its single error path.

Usage (from the repository root)::

    python -m tools.lint                # lint the tree, exit 1 on violations
    python -m tools.lint --list        # one line per registered rule
    python -m tools.lint --explain RULE  # a rule's full invariant
    python -m tools.lint --rule RULE   # run a single rule

Architecture: a rule is a named check over a :class:`LintContext` — the
parsed AST of every scanned file plus cached import classification
(eager / lazy / ``TYPE_CHECKING``-only, with relative imports resolved).
Rules self-register at import via :func:`register`, so adding one is a
single module under ``tools/lint/rules/`` with a fixture test; the
framework, CLI, and CI job pick it up automatically. Contexts can be
built from the real tree (:meth:`LintContext.from_root`, optionally with
per-file source *overrides* for counterfactual tests) or from in-memory
sources (:meth:`LintContext.from_sources`, used by the fixture corpus).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Literal, Mapping, Sequence

__all__ = [
    "ImportedModule",
    "LintContext",
    "LintError",
    "ModuleFile",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "register",
    "run_rules",
]

#: Directories scanned by default, relative to the repository root.
DEFAULT_SCAN_ROOTS = ("src/repro", "tools", "benchmarks")


class LintError(Exception):
    """Raised for setup problems (unknown rule, unparsable tree root)."""


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


#: How an import statement executes: at module import time (``eager``),
#: inside a function body (``lazy``), or never (``type_checking`` — under
#: an ``if TYPE_CHECKING:`` guard, visible to mypy only).
ImportKind = Literal["eager", "lazy", "type_checking"]


@dataclass(frozen=True)
class ImportedModule:
    """One import statement, with its target resolved to an absolute path.

    For ``import a.b`` the target is ``a.b`` and ``names`` is empty; for
    ``from a.b import x, y`` the target is ``a.b`` and ``names`` is
    ``("x", "y")`` — a name may itself be a submodule, which rules
    resolve against the scanned module set via
    :meth:`LintContext.resolve_targets`.
    """

    target: str
    names: tuple[str, ...]
    line: int
    kind: ImportKind


@dataclass(frozen=True)
class ModuleFile:
    """One scanned file: its path, dotted module name, and parsed AST."""

    path: str
    module: str
    is_package: bool
    tree: ast.Module
    source: str


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return (
        isinstance(test, ast.Attribute)
        and test.attr == "TYPE_CHECKING"
        and isinstance(test.value, ast.Name)
        and test.value.id == "typing"
    )


def _resolve_relative(mf: ModuleFile, node: ast.ImportFrom) -> str | None:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module
    parts = mf.module.split(".")
    if not mf.is_package:
        parts = parts[:-1]
    drop = node.level - 1
    if drop:
        parts = parts[: len(parts) - drop] if drop < len(parts) else []
    if node.module:
        parts = parts + node.module.split(".")
    return ".".join(parts) if parts else None


def _collect_imports(mf: ModuleFile) -> list[ImportedModule]:
    found: list[ImportedModule] = []

    def visit(nodes: Sequence[ast.stmt], kind: ImportKind) -> None:
        for node in nodes:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    found.append(
                        ImportedModule(alias.name, (), node.lineno, kind)
                    )
            elif isinstance(node, ast.ImportFrom):
                target = _resolve_relative(mf, node)
                if target is not None:
                    names = tuple(alias.name for alias in node.names)
                    found.append(
                        ImportedModule(target, names, node.lineno, kind)
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Imports in a function body run only when it is called.
                inner = "lazy" if kind == "eager" else kind
                visit(node.body, inner)
            elif isinstance(node, ast.ClassDef):
                visit(node.body, kind)
            elif isinstance(node, ast.If):
                body_kind: ImportKind = (
                    "type_checking"
                    if _is_type_checking_test(node.test) and kind == "eager"
                    else kind
                )
                visit(node.body, body_kind)
                visit(node.orelse, kind)
            elif isinstance(node, ast.Try):
                visit(node.body, kind)
                for handler in node.handlers:
                    visit(handler.body, kind)
                visit(node.orelse, kind)
                visit(node.finalbody, kind)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                visit(node.body, kind)
            elif isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                visit(node.body, kind)
                visit(node.orelse, kind)

    visit(mf.tree.body, "eager")
    return found


@dataclass
class LintContext:
    """Everything a rule may inspect: parsed files keyed by module name."""

    files: dict[str, ModuleFile]
    _imports: dict[str, list[ImportedModule]] = field(default_factory=dict)

    @classmethod
    def from_root(
        cls,
        root: Path,
        *,
        scan_roots: Sequence[str] = DEFAULT_SCAN_ROOTS,
        overrides: Mapping[str, str] | None = None,
    ) -> "LintContext":
        """Parse the real tree under ``root``.

        ``overrides`` maps repository-relative paths to replacement
        source text — counterfactual tests use it to ask "would the tree
        still lint if this file looked like *that*?" without touching
        disk.
        """
        overrides = dict(overrides or {})
        files: dict[str, ModuleFile] = {}
        for scan_root in scan_roots:
            base = root / scan_root
            if not base.exists():
                continue
            for path in sorted(base.rglob("*.py")):
                rel = path.relative_to(root).as_posix()
                source = overrides.pop(rel, None)
                if source is None:
                    source = path.read_text(encoding="utf-8")
                module, is_package = _module_name(rel)
                files[module] = ModuleFile(
                    path=rel,
                    module=module,
                    is_package=is_package,
                    tree=ast.parse(source, filename=rel),
                    source=source,
                )
        if overrides:
            unknown = ", ".join(sorted(overrides))
            raise LintError(f"override paths not in the scanned tree: {unknown}")
        return cls(files=files)

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "LintContext":
        """Build a context from ``{module_name: source}`` (fixture tests).

        A module name ending in ``.__init__`` declares a package; the
        suffix is stripped from the stored module name.
        """
        files: dict[str, ModuleFile] = {}
        for module, source in sources.items():
            is_package = module.endswith(".__init__") or module == "__init__"
            name = module.rsplit(".__init__", 1)[0] if is_package else module
            path = name.replace(".", "/") + (
                "/__init__.py" if is_package else ".py"
            )
            files[name] = ModuleFile(
                path=path,
                module=name,
                is_package=is_package,
                tree=ast.parse(source, filename=path),
                source=source,
            )
        return cls(files=files)

    def modules(self, prefix: str = "") -> Iterator[ModuleFile]:
        """Scanned modules, sorted by name, optionally under a prefix."""
        for name in sorted(self.files):
            if not prefix or name == prefix or name.startswith(prefix + "."):
                yield self.files[name]

    def imports_of(self, module: str) -> list[ImportedModule]:
        """All import statements of ``module`` (cached per context)."""
        cached = self._imports.get(module)
        if cached is None:
            cached = _collect_imports(self.files[module])
            self._imports[module] = cached
        return cached

    def resolve_targets(self, imp: ImportedModule) -> set[str]:
        """Scanned modules an import statement binds.

        ``import a.b.c`` resolves to the longest scanned prefix of
        ``a.b.c``; ``from a.b import x`` resolves to ``a.b.x`` when that
        is itself a scanned module, else to ``a.b``. Imports of modules
        outside the scanned tree resolve to nothing.
        """
        resolved: set[str] = set()
        if not imp.names:
            candidate = imp.target
            while candidate:
                if candidate in self.files:
                    resolved.add(candidate)
                    break
                candidate = candidate.rpartition(".")[0]
            return resolved
        for name in imp.names:
            if f"{imp.target}.{name}" in self.files:
                resolved.add(f"{imp.target}.{name}")
            elif imp.target in self.files:
                resolved.add(imp.target)
        return resolved


def _module_name(rel_path: str) -> tuple[str, bool]:
    """Dotted module name for a repository-relative path.

    Files under ``src/`` are rooted at the package (``src/repro/cli.py``
    → ``repro.cli``); everything else is rooted at the repository
    (``tools/lint/__init__.py`` → ``tools.lint``, ``benchmarks/x.py`` →
    ``benchmarks.x`` — a synthetic name when no ``__init__`` exists,
    which only affects reporting).
    """
    parts = rel_path.split("/")
    if parts[0] == "src":
        parts = parts[1:]
    is_package = parts[-1] == "__init__.py"
    if is_package:
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts), is_package


@dataclass(frozen=True)
class Rule:
    """A named invariant check over a :class:`LintContext`."""

    name: str
    summary: str
    explanation: str
    check: Callable[[LintContext], list[Violation]]


_REGISTRY: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add a rule to the registry (idempotent per name)."""
    existing = _REGISTRY.get(rule.name)
    if existing is not None and existing is not rule:
        raise LintError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return rule


def all_rules() -> list[Rule]:
    """Every registered rule, importing the bundled rule modules first."""
    from tools.lint import rules as _rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_rule(name: str) -> Rule:
    for rule in all_rules():
        if rule.name == name:
            return rule
    known = ", ".join(sorted(_REGISTRY))
    raise LintError(f"unknown rule {name!r} (known: {known})")


def run_rules(
    ctx: LintContext, rules: Sequence[Rule] | None = None
) -> list[Violation]:
    """Run rules over a context; violations sorted by location."""
    chosen = list(rules) if rules is not None else all_rules()
    found: list[Violation] = []
    for rule in chosen:
        found.extend(rule.check(ctx))
    return sorted(found, key=lambda v: (v.path, v.line, v.rule, v.message))
