"""Command-line entry point: ``python -m tools.lint`` from the repo root."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from tools.lint import (
    LintContext,
    LintError,
    Rule,
    all_rules,
    get_rule,
    run_rules,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description=(
            "Repo-specific AST linter: import cycles, core layering, "
            "__all__ consistency, determinism, CLI error policy, and "
            "annotation completeness."
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repository root to scan (default: current directory)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="RULE",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print a rule's full invariant description and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.list:
            for rule in all_rules():
                print(f"{rule.name:22s} {rule.summary}")
            return 0
        if args.explain:
            rule = get_rule(args.explain)
            print(f"{rule.name}: {rule.summary}\n")
            print(rule.explanation.strip())
            return 0
        chosen: list[Rule] | None = None
        if args.rule:
            chosen = [get_rule(name) for name in args.rule]
        ctx = LintContext.from_root(args.root.resolve())
        if not ctx.files:
            raise LintError(
                f"no Python files found under {args.root}; run from the "
                "repository root or pass --root"
            )
        violations = run_rules(ctx, chosen)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for violation in violations:
        print(violation.render())
    if violations:
        names = sorted({v.rule for v in violations})
        print(
            f"\n{len(violations)} violation(s) across {len(names)} rule(s): "
            f"{', '.join(names)}",
            file=sys.stderr,
        )
        return 1
    ran = len(chosen) if chosen is not None else len(all_rules())
    print(f"ok: {len(ctx.files)} files clean under {ran} rule(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
