"""``serving-layering``: the serving tier reads snapshots, never mines.

``repro/serving/`` answers queries from pattern files that the mining
pipeline already published. It may depend on the algorithm layer
(``repro.core``), the pattern-file readers (``repro.io``), and the miner
datatypes (``repro.miner``) — but never on database internals
(``repro.db``), the mining executors (``repro.parallel``), or the CLI
(``repro.cli``). A serving module that opens databases or launches
miners collapses the read path into the write path: hot swaps would
inherit mining's memory and failure profile, and the server could no
longer restart from nothing but a patterns file. Lazy imports inside
functions count; ``if TYPE_CHECKING:`` imports are exempt.

Intentional exceptions must be declared in :data:`EXEMPTIONS` with a
reason; an exemption that no longer matches anything is itself an error,
so the table cannot silently rot.
"""

from __future__ import annotations

from tools.lint import LintContext, Rule, Violation, register

#: Layer that must stay read-only over published snapshots.
SERVING_PREFIX = "repro.serving"

#: Write-path layers that serving must not import.
FORBIDDEN_PREFIXES = ("repro.db", "repro.parallel", "repro.cli")

#: ``{serving module: reason}`` — declared, reviewed layering exceptions.
EXEMPTIONS: dict[str, str] = {}


def _in_layer(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def check(ctx: LintContext) -> list[Violation]:
    violations: list[Violation] = []
    used_exemptions: set[str] = set()
    for mf in ctx.modules(SERVING_PREFIX):
        for imp in ctx.imports_of(mf.module):
            if imp.kind == "type_checking":
                continue
            hits = sorted(
                target
                for target in ctx.resolve_targets(imp) | {imp.target}
                for prefix in FORBIDDEN_PREFIXES
                if _in_layer(target, prefix)
            )
            if not hits:
                continue
            if mf.module in EXEMPTIONS:
                used_exemptions.add(mf.module)
                continue
            violations.append(
                Violation(
                    rule=RULE.name,
                    path=mf.path,
                    line=imp.line,
                    message=(
                        f"serving module {mf.module} has a {imp.kind} import "
                        f"of {hits[0]}; serving/ reads published pattern "
                        f"files via repro.io and repro.core only, never "
                        f"{', '.join(FORBIDDEN_PREFIXES)}"
                    ),
                )
            )
    for module in sorted(set(EXEMPTIONS) - used_exemptions):
        path = ctx.files[module].path if module in ctx.files else module
        violations.append(
            Violation(
                rule=RULE.name,
                path=path,
                line=1,
                message=(
                    f"stale layering exemption for {module}: it no longer "
                    f"imports a forbidden layer; delete it from EXEMPTIONS"
                ),
            )
        )
    return violations


RULE = register(
    Rule(
        name="serving-layering",
        summary=(
            "repro.serving must not import repro.db, repro.parallel, or "
            "repro.cli"
        ),
        explanation=__doc__ or "",
        check=check,
    )
)
