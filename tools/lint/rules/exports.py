"""``all-consistency``: every declared ``__all__`` must be honest.

A module's ``__all__`` is its public API contract — ``from m import *``
follows it, and so do readers deciding what is safe to call. This rule
checks three properties for every scanned module that declares one:

* **shape** — ``__all__`` is a list/tuple of string literals (optionally
  wrapped in ``sorted(...)`` or ``list(...)``, or derived from a
  module-level literal like ``__all__ = list(_FORWARDED)``);
* **existence** — every listed name is bound at module level (a def,
  class, assignment, or import). Modules with a PEP 562 module-level
  ``__getattr__`` are exempt from this check, since their names bind
  dynamically;
* **sortedness** — the listed names are in sorted order, so diffs stay
  one-line.

It deliberately does *not* require every public definition to be listed:
several internal modules export a narrow surface on purpose.
"""

from __future__ import annotations

import ast

from tools.lint import LintContext, ModuleFile, Rule, Violation, register


def _literal_strings(node: ast.expr) -> list[str] | None:
    """String elements of a list/tuple/set/dict literal, else ``None``.

    For a dict literal the *keys* are taken — the PEP 562 re-export
    pattern stores ``{name: providing_module}`` and derives ``__all__``
    as ``sorted(_EXPORTS)``.
    """
    elements: list[ast.expr | None]
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        elements = list(node.elts)
    elif isinstance(node, ast.Dict):
        elements = list(node.keys)
    else:
        return None
    out: list[str] = []
    for element in elements:
        if isinstance(element, ast.Constant) and isinstance(
            element.value, str
        ):
            out.append(element.value)
        else:
            return None
    return out


def _top_level_literals(mf: ModuleFile) -> dict[str, list[str]]:
    """Module-level ``NAME = [literal strings]`` bindings (one level)."""
    found: dict[str, list[str]] = {}
    for node in mf.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                values = _literal_strings(node.value)
                if values is not None:
                    found[target.id] = values
    return found


def _resolve_all(
    mf: ModuleFile, node: ast.expr
) -> tuple[list[str] | None, bool]:
    """``(names, is_explicitly_sorted)`` for an ``__all__`` value node."""
    direct = _literal_strings(node)
    if direct is not None:
        return direct, False
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("sorted", "list", "tuple")
        and len(node.args) == 1
        and not node.keywords
    ):
        inner = _literal_strings(node.args[0])
        if inner is None and isinstance(node.args[0], ast.Name):
            inner = _top_level_literals(mf).get(node.args[0].id)
        if inner is not None:
            return inner, node.func.id == "sorted"
    return None, False


def _module_level_bindings(mf: ModuleFile) -> set[str]:
    bound: set[str] = set()

    def bind_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind_target(element)
        elif isinstance(target, ast.Starred):
            bind_target(target.value)

    def visit(nodes: list[ast.stmt]) -> None:
        for node in nodes:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    bind_target(target)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                bind_target(node.target)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(
                        alias.asname
                        if alias.asname
                        else alias.name.partition(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound.add(alias.asname if alias.asname else alias.name)
            elif isinstance(node, ast.If):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                for handler in node.handlers:
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)

    visit(mf.tree.body)
    return bound


def check(ctx: LintContext) -> list[Violation]:
    violations: list[Violation] = []
    for mf in ctx.modules():
        for node in mf.tree.body:
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "__all__"
            ):
                continue
            names, explicitly_sorted = _resolve_all(mf, node.value)
            if names is None:
                violations.append(
                    Violation(
                        rule=RULE.name,
                        path=mf.path,
                        line=node.lineno,
                        message=(
                            "__all__ must be a literal list/tuple of strings "
                            "(optionally sorted()/list() of a module-level "
                            "literal) so it is statically checkable"
                        ),
                    )
                )
                continue
            duplicates = sorted(
                {name for name in names if names.count(name) > 1}
            )
            if duplicates:
                violations.append(
                    Violation(
                        rule=RULE.name,
                        path=mf.path,
                        line=node.lineno,
                        message=(
                            f"__all__ lists duplicate names: "
                            f"{', '.join(duplicates)}"
                        ),
                    )
                )
            if not explicitly_sorted and names != sorted(names):
                violations.append(
                    Violation(
                        rule=RULE.name,
                        path=mf.path,
                        line=node.lineno,
                        message=(
                            "__all__ entries must be in sorted order "
                            f"(first misplaced: "
                            f"{next(n for n, s in zip(names, sorted(names)) if n != s)!r})"
                        ),
                    )
                )
            bound = _module_level_bindings(mf)
            if "__getattr__" in bound:
                continue  # PEP 562 module: names bind dynamically.
            missing = sorted(set(names) - bound)
            if missing:
                violations.append(
                    Violation(
                        rule=RULE.name,
                        path=mf.path,
                        line=node.lineno,
                        message=(
                            f"__all__ names not bound at module level: "
                            f"{', '.join(missing)}"
                        ),
                    )
                )
    return violations


RULE = register(
    Rule(
        name="all-consistency",
        summary="declared __all__ lists must be literal, sorted, and bound",
        explanation=__doc__ or "",
        check=check,
    )
)
