"""``cli-error-policy``: one error path through the CLI, everywhere.

:mod:`repro.cli` has exactly one way to fail: a handler raises
``ValueError``/``OSError``, ``main()`` catches it and routes through
``_fail()``, which prints a single ``error: ...`` line to stderr and
returns exit code 1. Scripted callers can then rely on "exit 1 +
one-line stderr" for every operational failure (argparse usage errors
keep their conventional exit 2). This rule enforces the shape:

* no ``sys.exit(...)`` calls — exit codes flow through ``main()``'s
  return value;
* ``raise SystemExit`` only in the ``if __name__ == "__main__":`` guard;
* command handlers (``_cmd_*``) never ``return`` a nonzero integer
  constant — an error return hides the message and bypasses ``_fail``;
* a ``print`` whose message starts with ``error`` appears only inside
  ``_fail`` itself — anywhere else it is an error path dodging the
  helper;
* no bare ``except:`` — swallowing ``SystemExit``/``KeyboardInterrupt``
  breaks the contract from below.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint import LintContext, Rule, Violation, register

#: The module this policy governs.
SCOPE = "repro.cli"

#: The one function allowed to print an ``error: ...`` line.
FAIL_HELPER = "_fail"


def _is_main_guard(node: ast.stmt) -> bool:
    return (
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and isinstance(node.test.left, ast.Name)
        and node.test.left.id == "__name__"
    )


def _starts_with_error(node: ast.Call) -> bool:
    if not node.args:
        return False
    first = node.args[0]
    if isinstance(first, ast.JoinedStr) and first.values:
        first = first.values[0]
    return (
        isinstance(first, ast.Constant)
        and isinstance(first.value, str)
        and first.value.lstrip().lower().startswith("error")
    )


def _walk_with_function(
    stmt: ast.stmt, function: str | None, in_guard: bool
) -> Iterator[tuple[ast.AST, str | None, bool]]:
    """Yield ``(node, enclosing function name, under __main__ guard)``."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        yield stmt, function, in_guard
        for child in stmt.body:
            yield from _walk_with_function(child, stmt.name, False)
        return
    guard = in_guard or _is_main_guard(stmt)
    yield stmt, function, guard
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.stmt):
            yield from _walk_with_function(child, function, guard)
        elif isinstance(child, ast.ExceptHandler):
            yield child, function, guard
            for handler_stmt in child.body:
                yield from _walk_with_function(handler_stmt, function, guard)
        else:
            for node in ast.walk(child):
                yield node, function, guard


def check(ctx: LintContext) -> list[Violation]:
    mf = ctx.files.get(SCOPE)
    if mf is None:
        return []
    violations: list[Violation] = []

    def flag(line: int, message: str) -> None:
        violations.append(
            Violation(rule=RULE.name, path=mf.path, line=line, message=message)
        )

    nodes = (
        item
        for top in mf.tree.body
        for item in _walk_with_function(top, None, False)
    )
    for node, function, in_guard in nodes:
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "exit"
                and isinstance(func.value, ast.Name)
                and func.value.id == "sys"
            ):
                flag(
                    node.lineno,
                    "sys.exit() in the CLI; return an exit code from the "
                    "handler (or raise ValueError/OSError for errors) so "
                    "main() stays the single exit path",
                )
            if (
                isinstance(func, ast.Name)
                and func.id == "print"
                and _starts_with_error(node)
                and function != FAIL_HELPER
            ):
                flag(
                    node.lineno,
                    f"'error ...' printed outside {FAIL_HELPER}(); error "
                    "paths must raise and let main() route through "
                    f"{FAIL_HELPER} (one line on stderr, exit 1)",
                )
        elif isinstance(node, ast.Raise):
            exc = node.exc
            name = (
                exc.func.id
                if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name)
                else exc.id
                if isinstance(exc, ast.Name)
                else None
            )
            if name == "SystemExit" and not in_guard:
                flag(
                    node.lineno,
                    "raise SystemExit outside the __main__ guard; handlers "
                    "raise ValueError/OSError and main() returns the code",
                )
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            flag(
                node.lineno,
                "bare except: in the CLI swallows SystemExit and "
                "KeyboardInterrupt; catch (ValueError, OSError) explicitly",
            )
        elif (
            isinstance(node, ast.Return)
            and function is not None
            and function.startswith("_cmd_")
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
            and node.value.value != 0
        ):
            flag(
                node.lineno,
                f"{function} returns constant exit code "
                f"{node.value.value}; raise ValueError/OSError instead so "
                f"the message reaches {FAIL_HELPER}",
            )
    return violations


RULE = register(
    Rule(
        name="cli-error-policy",
        summary="repro.cli errors go through _fail(): one stderr line, exit 1",
        explanation=__doc__ or "",
        check=check,
    )
)
