"""``deterministic-core``: no entropy sources in the deterministic layers.

The differential-oracle suite (PR 4) and the incremental-consistency
tests (PR 5) both rest on one assumption: mining the same database twice
yields byte-identical results. Any call to an unseeded RNG or to a
wall-clock inside the algorithm layers silently breaks that, usually in
a way tests only catch probabilistically. This rule statically bans, in
``repro.core``, ``repro.itemsets``, and ``repro.incremental``:

* module-level ``random`` functions (``random.random()``,
  ``random.shuffle()``, …) — they share hidden global state;
* ``random.Random()`` with no arguments — an OS-entropy seed;
* ``time.time`` / ``time.time_ns`` — wall-clock values that leak into
  outputs (``time.perf_counter`` for *measuring* durations is fine and
  is what :mod:`repro.core.stats` uses);
* ``from random import ...`` / ``from time import time`` — the same
  calls with the module prefix laundered away.

Seeded generators are explicitly allowed: ``random.Random(seed)`` is how
:mod:`repro.datagen` stays reproducible, and a core module taking a
caller-provided ``Random`` instance is fine — the caller owns the seed.
"""

from __future__ import annotations

import ast

from tools.lint import LintContext, Rule, Violation, register

#: Subsystems whose outputs must be bit-reproducible.
SCOPES = ("repro.core", "repro.itemsets", "repro.incremental")

#: Wall-clock attributes of :mod:`time` that leak into outputs.
BANNED_TIME_ATTRS = ("time", "time_ns", "localtime", "ctime")


def check(ctx: LintContext) -> list[Violation]:
    violations: list[Violation] = []
    for scope in SCOPES:
        for mf in ctx.modules(scope):
            for imp in ctx.imports_of(mf.module):
                if imp.kind == "type_checking":
                    continue
                if imp.target == "random" and imp.names:
                    violations.append(
                        Violation(
                            rule=RULE.name,
                            path=mf.path,
                            line=imp.line,
                            message=(
                                "from-import of random in a deterministic "
                                "module; import the module and seed an "
                                "explicit random.Random(seed) instead"
                            ),
                        )
                    )
                if imp.target == "time" and any(
                    name in BANNED_TIME_ATTRS for name in imp.names
                ):
                    violations.append(
                        Violation(
                            rule=RULE.name,
                            path=mf.path,
                            line=imp.line,
                            message=(
                                "from-import of a wall-clock from time in a "
                                "deterministic module; use time.perf_counter "
                                "for durations"
                            ),
                        )
                    )
            for node in ast.walk(mf.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                ):
                    continue
                owner, attr = func.value.id, func.attr
                if owner == "random":
                    if attr == "Random" and (node.args or node.keywords):
                        continue  # Explicitly seeded generator: allowed.
                    violations.append(
                        Violation(
                            rule=RULE.name,
                            path=mf.path,
                            line=node.lineno,
                            message=(
                                f"random.{attr}(...) in a deterministic "
                                "module"
                                + (
                                    " (unseeded random.Random() draws an "
                                    "OS-entropy seed)"
                                    if attr == "Random"
                                    else " (module-level random functions "
                                    "share hidden global state)"
                                )
                                + "; pass a seeded random.Random through "
                                "the API instead"
                            ),
                        )
                    )
                elif owner == "time" and attr in BANNED_TIME_ATTRS:
                    violations.append(
                        Violation(
                            rule=RULE.name,
                            path=mf.path,
                            line=node.lineno,
                            message=(
                                f"time.{attr}() in a deterministic module; "
                                "wall-clock values leak into outputs — use "
                                "time.perf_counter for durations"
                            ),
                        )
                    )
    return violations


RULE = register(
    Rule(
        name="deterministic-core",
        summary="no unseeded RNGs or wall-clocks in core/itemsets/incremental",
        explanation=__doc__ or "",
        check=check,
    )
)
