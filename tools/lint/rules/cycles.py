"""``import-cycles``: the ``repro`` import graph must be acyclic.

PR 5 hit this the hard way: binding the :mod:`repro.io` re-exports at
package-import time closed a patterns → miner → counting → binlog cycle
that only failed for some import orders. The fix (PEP 562 lazy
re-exports) is one deleted line away from regressing, so this rule
re-derives the *eager* import graph on every lint run and fails on any
strongly connected component.

Edge semantics mirror the interpreter:

* only module-level (eager) imports create edges — imports inside
  function bodies and under ``if TYPE_CHECKING:`` do not execute at
  import time;
* importing ``a.b.c`` first executes the ``a`` and ``a.b`` package
  ``__init__`` modules, so the importer also gets edges to every proper
  ancestor package of the target — *except* ancestors it shares with the
  target's importer itself, which are already mid-initialization and do
  not re-execute.
"""

from __future__ import annotations

from tools.lint import LintContext, Rule, Violation, register

#: The package whose import graph is checked.
ROOT_PACKAGE = "repro"


def _is_ancestor(package: str, module: str) -> bool:
    return module.startswith(package + ".")


def build_eager_graph(
    ctx: LintContext, root_package: str = ROOT_PACKAGE
) -> dict[str, dict[str, int]]:
    """Eager import edges ``importer -> {imported: first line}``."""
    scoped = {
        mf.module
        for mf in ctx.modules(root_package)
    }
    graph: dict[str, dict[str, int]] = {module: {} for module in scoped}
    for module in scoped:
        edges = graph[module]
        for imp in ctx.imports_of(module):
            if imp.kind != "eager":
                continue
            for target in ctx.resolve_targets(imp):
                if target not in scoped:
                    continue
                reached = {target}
                ancestor = target.rpartition(".")[0]
                while ancestor:
                    if ancestor in scoped and not (
                        ancestor == module or _is_ancestor(ancestor, module)
                        or module == ancestor
                    ):
                        reached.add(ancestor)
                    ancestor = ancestor.rpartition(".")[0]
                for node in reached:
                    if node != module and node not in edges:
                        edges[node] = imp.line
    return graph


def _strongly_connected(graph: dict[str, dict[str, int]]) -> list[list[str]]:
    """Tarjan's algorithm, iterative; returns SCCs with ≥ 2 members or a
    self-loop."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for start in sorted(graph):
        if start in index:
            continue
        work: list[tuple[str, list[str], int]] = [
            (start, sorted(graph[start]), 0)
        ]
        while work:
            node, targets, pointer = work.pop()
            if pointer == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            while pointer < len(targets):
                target = targets[pointer]
                pointer += 1
                if target not in index:
                    work.append((node, targets, pointer))
                    work.append((target, sorted(graph[target]), 0))
                    advanced = True
                    break
                if target in on_stack:
                    lowlink[node] = min(lowlink[node], index[target])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph[node]:
                    sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def _cycle_path(graph: dict[str, dict[str, int]], component: list[str]) -> list[str]:
    """A concrete cycle through the component, for the message."""
    members = set(component)
    start = component[0]
    path = [start]
    seen = {start}
    node = start
    while True:
        candidates = sorted(t for t in graph[node] if t in members)
        if not candidates:
            return path
        nxt = next((t for t in candidates if t == start), None)
        if nxt is None:
            nxt = next((t for t in candidates if t not in seen), candidates[0])
        if nxt == start or nxt in seen:
            return path[path.index(nxt) if nxt in seen and nxt != start else 0:]
        path.append(nxt)
        seen.add(nxt)
        node = nxt


def check(ctx: LintContext) -> list[Violation]:
    graph = build_eager_graph(ctx)
    violations: list[Violation] = []
    for component in _strongly_connected(graph):
        path = _cycle_path(graph, component)
        cycle = " -> ".join(path + [path[0]])
        first = path[0]
        second = path[1] if len(path) > 1 else path[0]
        line = graph[first].get(second, 1)
        violations.append(
            Violation(
                rule=RULE.name,
                path=ctx.files[first].path,
                line=line,
                message=(
                    f"import cycle among {len(component)} modules: {cycle} "
                    f"(eager module-level imports, including implicit "
                    f"ancestor-package initialization)"
                    + (
                        f"; full component: {', '.join(component)}"
                        if len(path) < len(component)
                        else ""
                    )
                ),
            )
        )
    return violations


RULE = register(
    Rule(
        name="import-cycles",
        summary="the eager import graph of src/repro must be acyclic",
        explanation=__doc__ or "",
        check=check,
    )
)
