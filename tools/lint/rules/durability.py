"""``durable-writes``: every persistent write goes through the durable path.

The crash-consistency guarantees (PR 8) hold only because all durable
writes funnel through two modules: :mod:`repro.io.atomic` (temp file →
fsync → atomic rename → directory fsync) for whole-file artifacts, and
the :mod:`repro.io.fsops` seam (``fs_open``/``fs_replace``/``fs_fsync``)
for append-style writers like the binlog. A single ``open(path, "w")``
elsewhere reintroduces the torn-write bug class those modules exist to
kill — and, because the fault-injection layer hooks the seam, such a
write is also *invisible to the crash tests*, so the regression ships
silently. This rule statically bans, in ``repro`` and ``benchmarks``
(everywhere outside the two sanctioned modules):

* ``open()`` / ``*.open()`` with a write-capable mode (any of
  ``w``/``a``/``x``/``+``) — and builtin ``open()`` with a *non-literal*
  mode, which the linter cannot prove read-only;
* ``os.replace`` / ``os.rename`` / ``os.fsync`` — the raw primitives
  behind the seam, which used directly dodge fault injection;
* ``Path.write_text`` / ``Path.write_bytes`` — single-call torn writes
  with no temp file, no fsync, and no atomic commit.

Read-mode opens are untouched: durability is a write-path property, and
readers already defend themselves with format validation and checksums.
"""

from __future__ import annotations

import ast

from tools.lint import LintContext, Rule, Violation, register

#: Subsystems whose file writes must be crash-safe.
SCOPES = ("repro", "benchmarks")

#: The two modules allowed to touch raw write primitives: the atomic
#: whole-file protocol, and the hook-visible syscall seam itself.
ALLOWED_MODULES = frozenset({"repro.io.atomic", "repro.io.fsops"})

#: Mode characters that make an ``open`` write-capable.
WRITE_MODE_CHARS = frozenset("wax+")

#: ``os`` functions that belong behind the :mod:`repro.io.fsops` seam.
SEAM_OS_FUNCS = ("replace", "rename", "fsync")

#: ``Path`` methods that are torn writes by construction.
TORN_WRITE_METHODS = ("write_text", "write_bytes")


def _open_mode(node: ast.Call) -> ast.expr | None:
    """The mode expression of an ``open``-shaped call, if given."""
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    if len(node.args) >= 2:
        return node.args[1]
    return None


def _check_open_call(
    node: ast.Call, mf_path: str, *, builtin: bool
) -> Violation | None:
    mode = _open_mode(node)
    if mode is None:
        # No mode argument: the default is read-only. For method-form
        # ``x.open(arg)`` the first positional is a *path* for the many
        # ``open`` classmethods in this package, so only an explicit
        # ``mode=`` keyword or a literal mode string is judged there.
        return None
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if not WRITE_MODE_CHARS.intersection(mode.value):
            return None
        return Violation(
            rule=RULE.name,
            path=mf_path,
            line=node.lineno,
            message=(
                f"open with write mode {mode.value!r} outside the durable "
                f"write path; use repro.io.atomic (atomic_writer / "
                f"atomic_write_*) or the repro.io.fsops seam"
            ),
        )
    if builtin:
        return Violation(
            rule=RULE.name,
            path=mf_path,
            line=node.lineno,
            message=(
                "open() with a non-literal mode cannot be proven "
                "read-only; pass a literal mode (or route writes through "
                "repro.io.atomic)"
            ),
        )
    return None


def check(ctx: LintContext) -> list[Violation]:
    violations: list[Violation] = []
    for scope in SCOPES:
        for mf in ctx.modules(scope):
            if mf.module in ALLOWED_MODULES:
                continue
            for node in ast.walk(mf.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Name) and func.id == "open":
                    found = _check_open_call(node, mf.path, builtin=True)
                    if found is not None:
                        violations.append(found)
                elif isinstance(func, ast.Attribute):
                    owner = func.value
                    if (
                        isinstance(owner, ast.Name)
                        and owner.id == "os"
                        and func.attr in SEAM_OS_FUNCS
                    ):
                        violations.append(
                            Violation(
                                rule=RULE.name,
                                path=mf.path,
                                line=node.lineno,
                                message=(
                                    f"os.{func.attr}() bypasses the "
                                    f"repro.io.fsops seam (invisible to "
                                    f"fault injection); use fs_replace / "
                                    f"fs_fsync / fsync_dir"
                                ),
                            )
                        )
                    elif func.attr in TORN_WRITE_METHODS:
                        violations.append(
                            Violation(
                                rule=RULE.name,
                                path=mf.path,
                                line=node.lineno,
                                message=(
                                    f".{func.attr}() is a torn write (no "
                                    f"temp file, no fsync, no atomic "
                                    f"commit); use repro.io.atomic"
                                ),
                            )
                        )
                    elif func.attr == "open":
                        found = _check_open_call(node, mf.path, builtin=False)
                        if found is not None:
                            violations.append(found)
    return violations


RULE = register(
    Rule(
        name="durable-writes",
        summary="persistent writes go through repro.io.atomic or the fsops seam",
        explanation=__doc__ or "",
        check=check,
    )
)
