"""``annotations-complete``: every function is fully annotated.

``mypy --strict`` runs in CI (where it can be pip-installed), but the
container this repo develops in is offline, so the untyped-def subset of
strict mode is enforced locally too: every ``def`` in the scanned tree —
including nested functions, methods, ``*args``/``**kwargs``, and
``__init__`` (which must declare ``-> None``) — carries parameter and
return annotations. ``self`` and ``cls`` in the first position of a
method are exempt, as in mypy. This keeps "add annotations later" debt
from accumulating between CI runs and makes the CI mypy job a
refinement (signature *correctness*) rather than the first line of
defense (signature *presence*).

Test trees are deliberately out of scope — pytest fixtures make full
annotation there busywork — as is any function whose enclosing class or
own decorator list includes ``overload``-adjacent machinery that mypy
checks structurally anyway.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint import LintContext, Rule, Violation, register

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def _decorator_names(node: FunctionNode) -> set[str]:
    names: set[str] = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _functions(
    nodes: list[ast.stmt], in_class: bool
) -> Iterator[tuple[FunctionNode, bool]]:
    """Yield ``(function node, is a method)`` for every def, nested too."""
    for node in nodes:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, in_class
            yield from _functions(node.body, False)
        elif isinstance(node, ast.ClassDef):
            yield from _functions(node.body, True)
        elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    yield from _functions([child], in_class)
                elif isinstance(child, ast.ExceptHandler):
                    yield from _functions(child.body, in_class)


def _missing_parameters(node: FunctionNode, is_method: bool) -> list[str]:
    args = node.args
    positional = args.posonlyargs + args.args
    skip_first = (
        is_method
        and bool(positional)
        and "staticmethod" not in _decorator_names(node)
    )
    missing = [
        arg.arg
        for arg in positional[1 if skip_first else 0 :]
        if arg.annotation is None
    ]
    missing.extend(
        arg.arg for arg in args.kwonlyargs if arg.annotation is None
    )
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    return missing


def check(ctx: LintContext) -> list[Violation]:
    violations: list[Violation] = []
    for mf in ctx.modules():
        for node, is_method in _functions(mf.tree.body, False):
            missing = _missing_parameters(node, is_method)
            if missing:
                violations.append(
                    Violation(
                        rule=RULE.name,
                        path=mf.path,
                        line=node.lineno,
                        message=(
                            f"def {node.name}: unannotated parameter"
                            f"{'s' if len(missing) > 1 else ''} "
                            f"{', '.join(missing)}"
                        ),
                    )
                )
            if node.returns is None:
                violations.append(
                    Violation(
                        rule=RULE.name,
                        path=mf.path,
                        line=node.lineno,
                        message=(
                            f"def {node.name}: missing return annotation"
                            + (
                                " (__init__ declares -> None)"
                                if node.name == "__init__"
                                else ""
                            )
                        ),
                    )
                )
    return violations


RULE = register(
    Rule(
        name="annotations-complete",
        summary="every def in the scanned tree has full annotations",
        explanation=__doc__ or "",
        check=check,
    )
)
