"""``core-layering``: ``repro.core`` must not depend on storage or I/O.

The algorithm layer (``repro/core/``) is written against the structural
protocols in :mod:`repro.core.protocols`; the concrete providers live in
``repro/db/``, ``repro/io/``, and :mod:`repro.cli`. If a core module
imports any of those — eagerly *or* lazily inside a function — the
dependency inversion is gone and the protocols become decoration, so
this rule flags both kinds. ``if TYPE_CHECKING:`` imports are exempt:
they never execute and merely name concrete types in annotations.

Intentional exceptions must be declared in :data:`EXEMPTIONS` with a
reason; an exemption that no longer matches anything is itself an error,
so the table cannot silently rot.
"""

from __future__ import annotations

from tools.lint import LintContext, Rule, Violation, register

#: Layer that must stay provider-free.
CORE_PREFIX = "repro.core"

#: Provider layers that core must not import.
FORBIDDEN_PREFIXES = ("repro.db", "repro.io", "repro.cli")

#: ``{core module: reason}`` — declared, reviewed layering exceptions.
EXEMPTIONS: dict[str, str] = {}


def _in_layer(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def check(ctx: LintContext) -> list[Violation]:
    violations: list[Violation] = []
    used_exemptions: set[str] = set()
    for mf in ctx.modules(CORE_PREFIX):
        for imp in ctx.imports_of(mf.module):
            if imp.kind == "type_checking":
                continue
            hits = sorted(
                target
                for target in ctx.resolve_targets(imp) | {imp.target}
                for prefix in FORBIDDEN_PREFIXES
                if _in_layer(target, prefix)
            )
            if not hits:
                continue
            if mf.module in EXEMPTIONS:
                used_exemptions.add(mf.module)
                continue
            violations.append(
                Violation(
                    rule=RULE.name,
                    path=mf.path,
                    line=imp.line,
                    message=(
                        f"core module {mf.module} has a {imp.kind} import of "
                        f"{hits[0]}; core/ depends only on "
                        f"repro.core.protocols seams, never on "
                        f"{', '.join(FORBIDDEN_PREFIXES)}"
                    ),
                )
            )
    for module in sorted(set(EXEMPTIONS) - used_exemptions):
        path = ctx.files[module].path if module in ctx.files else module
        violations.append(
            Violation(
                rule=RULE.name,
                path=path,
                line=1,
                message=(
                    f"stale layering exemption for {module}: it no longer "
                    f"imports a forbidden layer; delete it from EXEMPTIONS"
                ),
            )
        )
    return violations


RULE = register(
    Rule(
        name="core-layering",
        summary="repro.core must not import repro.db, repro.io, or repro.cli",
        explanation=__doc__ or "",
        check=check,
    )
)
