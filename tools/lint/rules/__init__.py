"""Bundled rules: importing this package registers every rule.

Each rule lives in its own module and calls
:func:`tools.lint.register` at import time; :func:`tools.lint.all_rules`
imports this package, so a new rule only needs a new module listed here
(plus a fixture test in ``tests/test_lint.py``).
"""

# NB: no `from __future__ import annotations` here — it would bind the
# name `annotations` in this namespace and shadow the rule module below.
from tools.lint.rules import (  # noqa: F401  (registration side effects)
    annotations,
    cli_policy,
    cycles,
    determinism,
    durability,
    exports,
    layering,
    serving_layering,
)
